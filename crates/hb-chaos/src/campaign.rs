//! Parallel chaos campaigns: sweeping a fault grid over many seeded
//! runs and aggregating detection and overhead statistics.
//!
//! A [`CampaignSpec`] is the cartesian grid
//! `fix × loss × burst × drift × partition`; every cell is executed for
//! every seed, three times — once with a participant crash at mid-run
//! (measuring detection delay against the claimed and corrected §6.2
//! bounds), once with the crash followed by a §7 revive (measuring
//! re-convergence and stale-beat admission), and once quiet (measuring
//! false suspicions and steady-state overhead). Cells are distributed
//! across worker threads; results are collected in grid order, so the
//! emitted report is deterministic and a campaign re-run diffs clean
//! (the CI smoke campaign relies on this).

use std::fmt::Write as _;

use hb_core::{FixLevel, Params, Pid, Variant};
use hb_sim::channel::Time;
use hb_sim::schema::RunSummary;

use crate::json::escape;
use crate::pipeline::burst_model;
use crate::plan::{FaultPlan, FaultSpec, Link, ProtoSpec, Window};
use crate::{run_plan, run_plan_monitored, Backend};

/// The campaign grid and its fixed protocol context.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name (embedded in the report and the per-run plan names).
    pub name: String,
    /// Which substrate executes the runs.
    pub backend: Backend,
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Number of participants.
    pub n: usize,
    /// Run length in ticks.
    pub duration: Time,
    /// Grid axis: fix levels.
    pub fixes: Vec<FixLevel>,
    /// Grid axis: average loss probabilities (0 = lossless).
    pub loss: Vec<f64>,
    /// Grid axis: mean burst lengths in messages (1 ≈ independent).
    pub burst: Vec<f64>,
    /// Grid axis: participant-1 clock rates as `(num, den)`; `(1, 1)` is
    /// no drift. Only the live backend applies drift; the simulator notes
    /// it and runs undrifted.
    pub drift: Vec<(u64, u64)>,
    /// Grid axis: transient coordinator-partition durations in ticks
    /// (0 = none). The partition opens at `duration / 4` and always heals
    /// before the mid-run crash.
    pub partition: Vec<Time>,
    /// Seeds; each cell runs every seed.
    pub seeds: Vec<u64>,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Attach a streaming R1–R3 monitor (`hb-monitor`) to every run and
    /// aggregate its verdicts per cell. Under-corrected cells are
    /// *expected* to fire R1 (the claimed `2·tmax` bound is wrong — that
    /// is the paper's point); corrected cells must stay clean. Drifted
    /// cells run unmonitored: nodes stamp events on their local clocks,
    /// so a global-deadline monitor would measure the accumulated skew,
    /// not the protocol — and the simulator does not apply drift at all,
    /// so the two backends' verdicts would not be comparable.
    pub monitor: bool,
}

/// One grid point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    /// Fix level under test.
    pub fix: FixLevel,
    /// Average loss probability.
    pub loss: f64,
    /// Mean burst length.
    pub burst: f64,
    /// Participant-1 clock rate.
    pub drift: (u64, u64),
    /// Transient partition duration (0 = none).
    pub partition: Time,
}

/// Aggregated results of one cell across all seeds.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// The grid point.
    pub cell: Cell,
    /// Seeds executed.
    pub runs: usize,
    /// Crash runs in which the crash was detected before the horizon.
    pub detected: usize,
    /// Crash runs in which the faults had already inactivated the victim
    /// before the scheduled crash — the network was down, so no
    /// detection-bound claim applies (the quiet runs count the same
    /// failure as false suspicions).
    pub down_before_crash: usize,
    /// Mean detection delay over detected runs.
    pub detect_mean: f64,
    /// Worst detection delay.
    pub detect_max: Time,
    /// The paper's claimed detection bound for this cell.
    pub claimed_bound: Time,
    /// The corrected (§6.2) detection bound.
    pub corrected_bound: Time,
    /// Crash runs whose detection exceeded the claimed bound, or in
    /// which a live network never detected the crash at all.
    pub violations_claimed: usize,
    /// Like [`violations_claimed`](Self::violations_claimed) against the
    /// corrected bound.
    pub violations_corrected: usize,
    /// False suspicions summed over the quiet runs.
    pub false_suspicions: u64,
    /// Mean messages per tick over the quiet runs (steady-state
    /// overhead).
    pub msg_per_tick: f64,
    /// Revive runs in which the revived participant's fresh epoch was
    /// re-registered at the coordinator before the horizon (detection
    /// side of re-convergence).
    pub reconverged: usize,
    /// Mean revive-to-detection delay over re-converged runs.
    pub reconv_detect_mean: f64,
    /// Worst revive-to-detection delay.
    pub reconv_detect_max: Time,
    /// Revive runs in which the revived participant additionally became
    /// active and joined again (stability side of re-convergence).
    pub stabilised: usize,
    /// Mean revive-to-stability delay over stabilised runs.
    pub reconv_stable_mean: f64,
    /// Worst revive-to-stability delay.
    pub reconv_stable_max: Time,
    /// Stale (superseded-epoch) beats the coordinator admitted as fresh,
    /// summed over the revive runs.
    pub stale_admitted: u64,
    /// Runs executed with a streaming monitor attached (0 when the
    /// campaign ran unmonitored).
    pub monitor_runs: usize,
    /// Monitored runs with no violation of any requirement.
    pub monitor_clean: usize,
    /// Monitored runs whose R1 monitor fired (a participant silent past
    /// the cell's inactivation bound while the coordinator stayed
    /// active).
    pub monitor_r1: usize,
    /// Monitored runs whose R2 monitor fired (a participant
    /// non-voluntarily inactivated in a fault-free run).
    pub monitor_r2: usize,
    /// Monitored runs whose R3 monitor fired (the coordinator
    /// non-voluntarily inactivated in a fault-free run with every
    /// participant active).
    pub monitor_r3: usize,
    /// Earliest first-violation tick across all monitored runs, if any
    /// monitor fired.
    pub monitor_first: Option<Time>,
}

/// A finished campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The spec it ran.
    pub spec: CampaignSpec,
    /// One entry per grid cell, in grid order.
    pub cells: Vec<CellStats>,
}

impl CampaignSpec {
    /// The grid in deterministic (report) order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &fix in &self.fixes {
            for &loss in &self.loss {
                for &burst in &self.burst {
                    for &drift in &self.drift {
                        for &partition in &self.partition {
                            out.push(Cell {
                                fix,
                                loss,
                                burst,
                                drift,
                                partition,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The detection bound the paper claims for this configuration: the
    /// coordinator's own bound, plus — with more than one participant —
    /// the responders' original bound for the rest of the network to
    /// follow.
    pub fn claimed_bound(&self) -> Time {
        let p0 = Time::from(self.params.p0_bound_claimed());
        if self.n > 1 {
            p0 + Time::from(self.params.responder_bound_original())
        } else {
            p0
        }
    }

    /// The corrected (§6.2) counterpart of [`claimed_bound`](Self::claimed_bound).
    pub fn corrected_bound(&self) -> Time {
        let p0 = Time::from(self.params.p0_bound_corrected(self.variant));
        if self.n > 1 {
            p0 + Time::from(self.params.responder_bound_corrected(self.variant))
        } else {
            p0
        }
    }
}

/// The crashing participant in campaign runs.
pub const CRASH_PID: Pid = 1;

/// Which of the per-seed runs a campaign plan describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunKind {
    /// No lifecycle fault: false suspicions and steady-state overhead.
    Quiet,
    /// Participant 1 crashes at mid-run and stays down: detection delay.
    Crash,
    /// The mid-run crash followed by a §7 revive half a `tmax` later:
    /// re-convergence and stale-beat admission.
    CrashRevive,
}

impl RunKind {
    fn suffix(self) -> &'static str {
        match self {
            RunKind::Quiet => "/quiet",
            RunKind::Crash => "/crash",
            RunKind::CrashRevive => "/revive",
        }
    }
}

/// Build the fault plan for one `(cell, seed)` run of a campaign.
pub fn cell_plan(spec: &CampaignSpec, cell: &Cell, seed: u64, kind: RunKind) -> FaultPlan {
    let proto = ProtoSpec {
        variant: spec.variant,
        params: spec.params,
        fix: cell.fix,
        n: spec.n,
        duration: spec.duration,
        membership: false,
    };
    let mut plan = FaultPlan::new(
        format!(
            "{}/{}/loss{}x{}/drift{}-{}/part{}/s{}{}",
            spec.name,
            cell.fix.name(),
            cell.loss,
            cell.burst,
            cell.drift.0,
            cell.drift.1,
            cell.partition,
            seed,
            kind.suffix()
        ),
        seed,
        proto,
    );
    if cell.loss > 0.0 {
        plan = plan.with(FaultSpec::Loss {
            window: Window::always(),
            link: Link::any(),
            model: burst_model(cell.loss, cell.burst),
        });
    }
    if cell.partition > 0 {
        let from = spec.duration / 4;
        // Heal strictly before the crash so detection is measured on a
        // connected network.
        let to = (from + cell.partition).min(spec.duration / 2);
        plan = plan.with(FaultSpec::Partition {
            window: Window::between(from, to),
            groups: vec![vec![0], (1..=spec.n).collect()],
        });
    }
    if cell.drift != (1, 1) {
        plan = plan.with(FaultSpec::Drift {
            pid: CRASH_PID,
            offset: 0,
            num: cell.drift.0,
            den: cell.drift.1,
        });
    }
    if kind != RunKind::Quiet {
        plan = plan.with(FaultSpec::Crash {
            pid: CRASH_PID,
            at: spec.duration / 2,
        });
    }
    if kind == RunKind::CrashRevive {
        // Half a round later: strictly after the crash, but well inside
        // the coordinator's detection chain, so the revived incarnation
        // can re-register before the cluster shuts down.
        plan = plan.with(FaultSpec::Revive {
            pid: CRASH_PID,
            at: spec.duration / 2 + Time::from(spec.params.tmax() / 2).max(1),
        });
    }
    plan
}

/// Execute one cell over every seed.
fn run_cell(spec: &CampaignSpec, cell: &Cell) -> CellStats {
    let claimed = spec.claimed_bound();
    let corrected = spec.corrected_bound();
    let mut detected = 0usize;
    let mut down_before_crash = 0usize;
    let mut detect_sum = 0u128;
    let mut detect_max = 0;
    let mut violations_claimed = 0;
    let mut violations_corrected = 0;
    let mut false_suspicions = 0u64;
    let mut rate_sum = 0.0f64;
    let mut reconverged = 0usize;
    let mut detect_delay_sum = 0u128;
    let mut reconv_detect_max = 0;
    let mut stabilised = 0usize;
    let mut stable_delay_sum = 0u128;
    let mut reconv_stable_max = 0;
    let mut stale_admitted = 0u64;
    let mut monitor_runs = 0usize;
    let mut monitor_clean = 0usize;
    let mut monitor_r1 = 0usize;
    let mut monitor_r2 = 0usize;
    let mut monitor_r3 = 0usize;
    let mut monitor_first: Option<Time> = None;
    // Drifted cells run unmonitored (see `CampaignSpec::monitor`): their
    // event stamps come from skewed local clocks, which a global-deadline
    // monitor would misread as requirement breaches.
    let monitored = spec.monitor && cell.drift == (1, 1);
    let exec = |plan: &FaultPlan| {
        if monitored {
            run_plan_monitored(plan, spec.backend)
        } else {
            run_plan(plan, spec.backend)
        }
    };
    let mut tally = |s: &RunSummary| {
        let Some(v) = &s.monitor else { return };
        monitor_runs += 1;
        if v.clean() {
            monitor_clean += 1;
        }
        for (hit, count) in [
            (v.r1, &mut monitor_r1),
            (v.r2, &mut monitor_r2),
            (v.r3, &mut monitor_r3),
        ] {
            if let Some(f) = hit {
                *count += 1;
                monitor_first = Some(monitor_first.map_or(f.at, |t| t.min(f.at)));
            }
        }
    };
    for &seed in &spec.seeds {
        let crashed: RunSummary = exec(&cell_plan(spec, cell, seed, RunKind::Crash));
        tally(&crashed);
        match crashed.detection_delay {
            Some(d) => {
                detected += 1;
                detect_sum += u128::from(d);
                detect_max = detect_max.max(d);
                if d > claimed {
                    violations_claimed += 1;
                }
                if d > corrected {
                    violations_corrected += 1;
                }
            }
            None if crashed.crashes.is_empty() => {
                // The faults inactivated the victim first: the bound
                // claims don't apply to a network that was already down.
                down_before_crash += 1;
            }
            None => {
                // A live crash was never detected before the horizon:
                // worse than any bound.
                violations_claimed += 1;
                violations_corrected += 1;
            }
        }
        let revive: RunSummary = exec(&cell_plan(spec, cell, seed, RunKind::CrashRevive));
        tally(&revive);
        if let Some(d) = revive.reconv_detect {
            reconverged += 1;
            detect_delay_sum += u128::from(d);
            reconv_detect_max = reconv_detect_max.max(d);
        }
        if let Some(d) = revive.reconv_stable {
            stabilised += 1;
            stable_delay_sum += u128::from(d);
            reconv_stable_max = reconv_stable_max.max(d);
        }
        stale_admitted += u64::from(revive.stale_beats_admitted);
        let quiet: RunSummary = exec(&cell_plan(spec, cell, seed, RunKind::Quiet));
        tally(&quiet);
        false_suspicions += u64::from(quiet.false_inactivations);
        if quiet.duration > 0 {
            rate_sum += quiet.messages_sent as f64 / quiet.duration as f64;
        }
    }
    CellStats {
        cell: *cell,
        runs: spec.seeds.len(),
        detected,
        down_before_crash,
        detect_mean: if detected > 0 {
            detect_sum as f64 / detected as f64
        } else {
            0.0
        },
        detect_max,
        claimed_bound: claimed,
        corrected_bound: corrected,
        violations_claimed,
        violations_corrected,
        false_suspicions,
        msg_per_tick: if spec.seeds.is_empty() {
            0.0
        } else {
            rate_sum / spec.seeds.len() as f64
        },
        reconverged,
        reconv_detect_mean: if reconverged > 0 {
            detect_delay_sum as f64 / reconverged as f64
        } else {
            0.0
        },
        reconv_detect_max,
        stabilised,
        reconv_stable_mean: if stabilised > 0 {
            stable_delay_sum as f64 / stabilised as f64
        } else {
            0.0
        },
        reconv_stable_max,
        stale_admitted,
        monitor_runs,
        monitor_clean,
        monitor_r1,
        monitor_r2,
        monitor_r3,
        monitor_first,
    }
}

/// Run the whole campaign, fanning cells out over worker threads.
/// Results come back in grid order regardless of scheduling, so the
/// report is deterministic.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let cells = spec.cells();
    let threads = spec.threads.max(1).min(cells.len().max(1));
    let mut indexed: Vec<(usize, CellStats)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let cells = &cells;
            handles.push(scope.spawn(move || {
                cells
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == w)
                    .map(|(i, cell)| (i, run_cell(spec, cell)))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    CampaignReport {
        spec: spec.clone(),
        cells: indexed.into_iter().map(|(_, s)| s).collect(),
    }
}

impl CellStats {
    /// This cell as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let monitor_first = match self.monitor_first {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            s,
            "{{\"fix\":\"{}\",\"loss\":{},\"burst\":{},\"drift\":\"{}/{}\",\"partition\":{},\
             \"runs\":{},\"detected\":{},\"down_before_crash\":{},\
             \"detect_mean\":{:.3},\"detect_max\":{},\
             \"claimed_bound\":{},\"corrected_bound\":{},\
             \"violations_claimed\":{},\"violations_corrected\":{},\
             \"false_suspicions\":{},\"msg_per_tick\":{:.4},\
             \"reconverged\":{},\"reconv_detect_mean\":{:.3},\"reconv_detect_max\":{},\
             \"stabilised\":{},\"reconv_stable_mean\":{:.3},\"reconv_stable_max\":{},\
             \"stale_admitted\":{},\
             \"monitor_runs\":{},\"monitor_clean\":{},\"monitor_r1\":{},\
             \"monitor_r2\":{},\"monitor_r3\":{},\"monitor_first\":{}}}",
            self.cell.fix.name(),
            self.cell.loss,
            self.cell.burst,
            self.cell.drift.0,
            self.cell.drift.1,
            self.cell.partition,
            self.runs,
            self.detected,
            self.down_before_crash,
            self.detect_mean,
            self.detect_max,
            self.claimed_bound,
            self.corrected_bound,
            self.violations_claimed,
            self.violations_corrected,
            self.false_suspicions,
            self.msg_per_tick,
            self.reconverged,
            self.reconv_detect_mean,
            self.reconv_detect_max,
            self.stabilised,
            self.reconv_stable_mean,
            self.reconv_stable_max,
            self.stale_admitted,
            self.monitor_runs,
            self.monitor_clean,
            self.monitor_r1,
            self.monitor_r2,
            self.monitor_r3,
            monitor_first,
        );
        s
    }
}

impl CampaignReport {
    /// The whole campaign as a single-line JSON report.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(CellStats::to_json).collect();
        format!(
            "{{\"record\":\"campaign\",\"name\":\"{}\",\"backend\":\"{}\",\
             \"variant\":\"{}\",\"tmin\":{},\"tmax\":{},\"n\":{},\"duration\":{},\
             \"seeds\":{},\"monitor\":{},\"cells\":[{}]}}",
            escape(&self.spec.name),
            self.spec.backend.name(),
            self.spec.variant.name(),
            self.spec.params.tmin(),
            self.spec.params.tmax(),
            self.spec.n,
            self.spec.duration,
            self.spec.seeds.len(),
            self.spec.monitor,
            cells.join(",")
        )
    }

    /// Total runs executed (three per cell per seed: crash, crash+revive,
    /// quiet).
    pub fn total_runs(&self) -> usize {
        3 * self.cells.len() * self.spec.seeds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(backend: Backend, threads: usize) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            backend,
            variant: Variant::Binary,
            params: Params::new(2, 8).unwrap(),
            n: 1,
            duration: 600,
            fixes: vec![FixLevel::Original, FixLevel::Full],
            loss: vec![0.0, 0.05],
            burst: vec![2.0],
            drift: vec![(1, 1)],
            partition: vec![0, 8],
            seeds: vec![1, 2],
            threads,
            monitor: false,
        }
    }

    #[test]
    fn grid_order_is_deterministic_and_complete() {
        let spec = small_spec(Backend::Sim, 1);
        let cells = spec.cells();
        // fixes × loss × burst × drift × partition = 2·2·1·1·2
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].fix, FixLevel::Original);
        assert_eq!(cells[0].partition, 0);
        assert_eq!(cells[1].partition, 8);
        assert_eq!(cells.last().unwrap().fix, FixLevel::Full);
    }

    #[test]
    fn parallel_and_serial_campaigns_agree_byte_for_byte() {
        let serial = run_campaign(&small_spec(Backend::Sim, 1)).to_json();
        let parallel = run_campaign(&small_spec(Backend::Sim, 4)).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn healthy_cells_detect_within_corrected_bounds() {
        let report = run_campaign(&small_spec(Backend::Sim, 2));
        for cell in &report.cells {
            assert_eq!(cell.runs, 2);
            assert_eq!(
                cell.detected + cell.down_before_crash,
                2,
                "every crash run ends detected or pre-starved: {:?}",
                cell.cell
            );
            if cell.cell.loss == 0.0 && cell.cell.partition == 0 {
                assert_eq!(cell.detected, 2, "clean cells always detect");
                assert_eq!(cell.reconverged, 2, "clean revives re-register");
                assert_eq!(cell.stabilised, 2, "clean revives stabilise");
                assert!(
                    cell.reconv_detect_max <= cell.corrected_bound,
                    "re-convergence within the corrected bound: {:?}",
                    cell.cell
                );
                assert!(
                    cell.reconv_stable_mean >= cell.reconv_detect_mean,
                    "stability never precedes detection: {:?}",
                    cell.cell
                );
            }
            assert_eq!(
                cell.violations_corrected, 0,
                "corrected bound must hold: {:?}",
                cell.cell
            );
            assert!(cell.msg_per_tick > 0.0);
        }
    }

    #[test]
    fn monitored_campaigns_separate_naive_from_corrected_cells() {
        // Lossless cells only: the monitor story is sharpest there. The
        // Original-fix watchdog checks the claimed 2·tmax bound, which
        // the crash runs breach (the real inactivation chain takes up to
        // 3·tmax − tmin); the Full-fix watchdog checks the corrected
        // bound, which the model proves unbreachable without faults on
        // the monitored path.
        let spec = CampaignSpec {
            loss: vec![0.0],
            partition: vec![0],
            monitor: true,
            ..small_spec(Backend::Sim, 2)
        };
        let report = run_campaign(&spec);
        for cell in &report.cells {
            // Every run of every seed was monitored: 3 kinds × 2 seeds.
            assert_eq!(cell.monitor_runs, 6, "{:?}", cell.cell);
            assert_eq!(
                cell.monitor_clean + cell.monitor_r1 + cell.monitor_r2 + cell.monitor_r3,
                cell.monitor_runs,
                "verdicts partition the runs (one requirement per run \
                 here): {:?}",
                cell.cell
            );
            if cell.cell.fix.corrected_bounds() {
                assert_eq!(cell.monitor_clean, cell.monitor_runs, "{:?}", cell.cell);
                assert_eq!(cell.monitor_first, None);
            } else {
                // Each seed's crash run breaches the claimed R1 bound.
                assert!(cell.monitor_r1 >= 2, "{:?}: {cell:?}", cell.cell);
                assert!(cell.monitor_first.is_some());
            }
        }
        // The unmonitored campaign reports zeros.
        let plain = run_campaign(&CampaignSpec {
            monitor: false,
            ..spec
        });
        assert!(plain.cells.iter().all(|c| c.monitor_runs == 0));
    }

    #[test]
    fn report_json_carries_the_grid() {
        let report = run_campaign(&CampaignSpec {
            fixes: vec![FixLevel::Full],
            loss: vec![0.0],
            partition: vec![0],
            seeds: vec![7],
            ..small_spec(Backend::Sim, 1)
        });
        let json = report.to_json();
        assert!(json.contains("\"record\":\"campaign\""), "{json}");
        assert!(json.contains("\"backend\":\"sim\""), "{json}");
        assert!(json.contains("\"fix\":\"full-fix\""), "{json}");
        assert!(json.contains("\"reconverged\":"), "{json}");
        assert!(json.contains("\"reconv_detect_mean\":"), "{json}");
        assert!(json.contains("\"reconv_stable_max\":"), "{json}");
        assert_eq!(report.total_runs(), 3);
    }

    #[test]
    fn cell_plans_are_valid_and_heal_partitions_before_the_crash() {
        let spec = small_spec(Backend::Sim, 1);
        for cell in spec.cells() {
            for kind in [RunKind::Quiet, RunKind::Crash, RunKind::CrashRevive] {
                let plan = cell_plan(&spec, &cell, 9, kind);
                plan.validate().expect("campaign plans must validate");
                for f in &plan.faults {
                    if let FaultSpec::Partition { window, .. } = f {
                        assert!(window.to.unwrap() <= spec.duration / 2);
                    }
                }
                assert_eq!(plan.first_crash().is_some(), kind != RunKind::Quiet);
                let revives = plan
                    .faults
                    .iter()
                    .any(|f| matches!(f, FaultSpec::Revive { .. }));
                assert_eq!(revives, kind == RunKind::CrashRevive);
            }
        }
    }
}
