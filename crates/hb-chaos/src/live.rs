//! Running a fault plan on the live runtime.
//!
//! [`ChaosTransport`] is a [`Transport`] decorator: every outgoing
//! heartbeat frame is submitted to the shared [`FaultPipeline`] — the
//! same engine the simulator installs as its fault hook — and is dropped,
//! duplicated, or held back accordingly before reaching the wrapped
//! transport (loopback or UDP). Control frames bypass the pipeline, as
//! in the simulator and the loopback network: they are the harness's
//! hand, not protocol traffic.
//!
//! [`ChaosCluster`] composes the decorator with
//! [`hb_net`]'s node runtimes over a lossless loopback under virtual
//! time, adding the one fault class only a live runtime can express:
//! **per-node clock drift**. Each node is polled at the local tick its
//! own [`SkewedClock`] reads, while the network and the observer stay on
//! true time — a fast node fires watchdogs early, a slow one late,
//! exactly the failure mode the corrected bounds must absorb.

use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hb_core::coordinator::CoordSpec;
use hb_core::events::SharedTap;
use hb_core::responder::RespSpec;
use hb_core::trace::Event;
use hb_core::{Pid, Status};
use hb_net::loopback::{Faults, LoopbackEndpoint, LoopbackNet};
use hb_net::node::NodeRuntime;
use hb_net::transport::{Recv, Transport};
use hb_net::wire::{Command, Frame};
use hb_net::{SkewedClock, TimeSource, VirtualClock};
use hb_sim::channel::Time;
use hb_sim::schema::RunSummary;
use hb_sim::SendFate;

use crate::pipeline::FaultPipeline;
use crate::plan::{FaultPlan, FaultSpec};

/// A frame held back by a reorder/delay-spike fate, awaiting release.
#[derive(Clone, Copy, Debug)]
struct Held {
    due: Time,
    dst: Pid,
    frame: Frame,
    budget: u32,
}

/// Pipeline state shared by every [`ChaosTransport`] of one run.
pub struct ChaosNet {
    pipeline: FaultPipeline,
    /// True cluster time, set by the harness each tick. `None` outside a
    /// cluster (standalone decorator use): the caller's own tick is
    /// trusted instead.
    true_now: Option<Time>,
    held: Vec<Held>,
    /// Logical heartbeat sends (one per send call, as in the simulator).
    sent: u64,
    /// Sends the pipeline dropped.
    lost: u64,
    /// Optional event tap told about pipeline drops. Live nodes only see
    /// their own sends and deliveries — the adversary's drop decision is
    /// invisible to them — so the synthetic `lose` event a streaming
    /// monitor needs (the R2/R3 fault-free premise) is emitted here, at
    /// the only place that knows, mirroring the simulator's own `lose`
    /// records.
    tap: Option<SharedTap>,
}

impl std::fmt::Debug for ChaosNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosNet")
            .field("pipeline", &self.pipeline)
            .field("true_now", &self.true_now)
            .field("held", &self.held.len())
            .field("sent", &self.sent)
            .field("lost", &self.lost)
            .field("tap", &self.tap.is_some())
            .finish()
    }
}

impl ChaosNet {
    /// Shared pipeline state for one plan run.
    pub fn new(pipeline: FaultPipeline) -> Arc<Mutex<ChaosNet>> {
        Arc::new(Mutex::new(ChaosNet {
            pipeline,
            true_now: None,
            held: Vec::new(),
            sent: 0,
            lost: 0,
            tap: None,
        }))
    }
}

/// A fault-injecting [`Transport`] decorator (one per node, sharing the
/// run's [`ChaosNet`]).
pub struct ChaosTransport<T> {
    inner: T,
    shared: Arc<Mutex<ChaosNet>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner`, injecting faults from the shared pipeline.
    pub fn new(inner: T, shared: Arc<Mutex<ChaosNet>>) -> Self {
        ChaosTransport { inner, shared }
    }

    /// Release every held frame due at `now` into the wrapped transport.
    fn flush(&mut self, now: Time, st: &mut ChaosNet) -> io::Result<()> {
        let mut i = 0;
        while i < st.held.len() {
            if st.held[i].due <= now {
                let h = st.held.swap_remove(i);
                self.inner.send(now, h.dst, &h.frame, h.budget)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, now: Time, dst: Pid, frame: &Frame, budget: u32) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let mut st = shared.lock().expect("chaos state poisoned");
        // Nodes may live on drifted local clocks; faults act on true time.
        let now = st.true_now.unwrap_or(now);
        self.flush(now, &mut st)?;
        if matches!(frame, Frame::Control { .. }) {
            return self.inner.send(now, dst, frame, budget);
        }
        st.sent += 1;
        match st.pipeline.decide(now, frame.src(), dst) {
            SendFate::Drop => {
                st.lost += 1;
                if let Some(tap) = &st.tap {
                    if let Ok(mut t) = tap.lock() {
                        t.on_event(&Event::Lose {
                            at: now,
                            from: frame.src(),
                            to: dst,
                        });
                    }
                }
                Ok(())
            }
            SendFate::Deliver {
                copies,
                extra_delay,
            } => {
                for _ in 0..copies {
                    if extra_delay == 0 {
                        self.inner.send(now, dst, frame, budget)?;
                    } else {
                        st.held.push(Held {
                            due: now + Time::from(extra_delay),
                            dst,
                            frame: *frame,
                            budget: budget.saturating_sub(extra_delay),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    fn try_recv(&mut self, now: Time) -> io::Result<Option<Recv>> {
        let shared = Arc::clone(&self.shared);
        let mut st = shared.lock().expect("chaos state poisoned");
        let now = st.true_now.unwrap_or(now);
        self.flush(now, &mut st)?;
        drop(st);
        self.inner.try_recv(now)
    }

    fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        self.inner.wait(timeout)
    }
}

/// A live cluster running one [`FaultPlan`]: coordinator + N participants
/// over a lossless loopback, every endpoint wrapped in a
/// [`ChaosTransport`], stepped under virtual time with per-node drift.
pub struct ChaosCluster {
    plan: FaultPlan,
    net: LoopbackNet,
    shared: Arc<Mutex<ChaosNet>>,
    nodes: Vec<Option<NodeRuntime<ChaosTransport<LoopbackEndpoint>>>>,
    injector: LoopbackEndpoint,
    clock: VirtualClock,
    /// Per-pid local clock (identity skew unless the plan drifts it).
    local: Vec<SkewedClock<VirtualClock>>,
    start_at: Vec<Time>,
    injections: Vec<(Time, Pid, Command)>,
    now: Time,
    statuses: Vec<Option<(Status, bool)>>,
    crashes: Vec<(Pid, Time)>,
    nv_inactivations: Vec<(Pid, Time)>,
    leaves: Vec<(Pid, Time)>,
    revives: Vec<(Pid, Time)>,
    /// Revived participants not yet fully re-converged:
    /// `(pid, epoch, revived_at, detected_at)`.
    pending_reconv: Vec<(Pid, u8, Time, Option<Time>)>,
    reconv_detects: Vec<(Pid, Time)>,
    reconv_stables: Vec<(Pid, Time)>,
    all_inactive_at: Option<Time>,
    /// Event tap attached to every node (including late joiners) and to
    /// the pipeline's drop site.
    tap: Option<SharedTap>,
}

impl ChaosCluster {
    /// Build a cluster for `plan`; nothing runs until [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        let n = plan.proto.n;
        // Endpoints 0..=n for the nodes, n+1 for the control injector.
        // The loopback itself is lossless: the pipeline is the sole drop
        // authority, exactly as when it is the simulator's fault hook.
        let net = LoopbackNet::new(n + 2, Faults::none(), plan.seed);
        let shared = ChaosNet::new(FaultPipeline::new(&plan));
        let clock = VirtualClock::new();
        let mut local: Vec<SkewedClock<VirtualClock>> = (0..=n)
            .map(|_| SkewedClock::new(clock.clone(), 0, 1, 1))
            .collect();
        let mut start_at = vec![0; n];
        let mut injections = Vec::new();
        for fault in &plan.faults {
            match *fault {
                FaultSpec::Drift {
                    pid,
                    offset,
                    num,
                    den,
                } => local[pid] = SkewedClock::new(clock.clone(), offset, num, den),
                FaultSpec::Crash { pid, at } => injections.push((at, pid, Command::Crash)),
                FaultSpec::Leave { pid, at } => injections.push((at, pid, Command::Leave)),
                FaultSpec::Revive { pid, at } => injections.push((at, pid, Command::Revive)),
                FaultSpec::Start { pid, at } => start_at[pid - 1] = at,
                _ => {}
            }
        }
        let coord_spec = CoordSpec::new(plan.proto.variant, plan.proto.params, n, plan.proto.fix);
        let coord = NodeRuntime::coordinator(
            coord_spec,
            ChaosTransport::new(net.endpoint(0), Arc::clone(&shared)),
        );
        let mut nodes: Vec<Option<NodeRuntime<ChaosTransport<LoopbackEndpoint>>>> =
            vec![Some(coord)];
        nodes.extend((0..n).map(|_| None));
        let injector = net.endpoint(n + 1);
        ChaosCluster {
            net,
            shared,
            nodes,
            injector,
            clock,
            local,
            start_at,
            injections,
            now: 0,
            statuses: vec![None; n + 1],
            crashes: Vec::new(),
            nv_inactivations: Vec::new(),
            leaves: Vec::new(),
            revives: Vec::new(),
            pending_reconv: Vec::new(),
            reconv_detects: Vec::new(),
            reconv_stables: Vec::new(),
            all_inactive_at: None,
            tap: None,
            plan,
        }
    }

    /// Attach a live event tap — e.g. a streaming requirement monitor
    /// (`hb_monitor::MonitorSet::shared`) — to every node's event sink
    /// (late joiners included) and to the fault pipeline's drop site, so
    /// the tap sees the same event stream the simulator would emit:
    /// sends, deliveries, lifecycle transitions, and losses.
    pub fn attach_monitor(&mut self, tap: SharedTap) {
        for node in self.nodes.iter_mut().flatten() {
            node.attach_tap(tap.clone());
        }
        self.shared.lock().expect("chaos state poisoned").tap = Some(tap.clone());
        self.tap = Some(tap);
    }

    /// Current true tick.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether the coordinator and every started, not-left participant
    /// are inactive.
    pub fn all_inactive(&self) -> bool {
        let coord_inactive = self.nodes[0]
            .as_ref()
            .is_some_and(|c| c.status().is_inactive());
        coord_inactive
            && self.nodes[1..]
                .iter()
                .flatten()
                .all(|p| p.status().is_inactive() || p.left())
    }

    /// Advance by one true tick: start late joiners, deliver due control
    /// injections, then drain every node at its own (possibly drifted)
    /// local tick until the network is quiet.
    pub fn step(&mut self) {
        let now = self.now;
        self.shared.lock().expect("chaos state poisoned").true_now = Some(now);
        for i in 0..self.plan.proto.n {
            if self.nodes[i + 1].is_none() && self.start_at[i] == now {
                self.net.purge(i + 1);
                let spec = RespSpec::new(
                    self.plan.proto.variant,
                    self.plan.proto.params,
                    self.plan.proto.fix,
                );
                let transport =
                    ChaosTransport::new(self.net.endpoint(i + 1), Arc::clone(&self.shared));
                let mut node = NodeRuntime::participant(i + 1, spec, transport)
                    .started_at(self.local[i + 1].now());
                if let Some(tap) = &self.tap {
                    node.attach_tap(tap.clone());
                }
                self.nodes[i + 1] = Some(node);
            }
        }
        let src = self.plan.proto.n + 1;
        let mut pending = std::mem::take(&mut self.injections);
        pending.retain(|&(t, pid, cmd)| {
            if t != now {
                return true;
            }
            self.injector
                .send(now, pid, &Frame::control(src, cmd), 0)
                .expect("loopback send cannot fail");
            false
        });
        self.injections = pending;

        loop {
            for (pid, node) in self.nodes.iter_mut().enumerate() {
                if let Some(node) = node {
                    node.poll(self.local[pid].now())
                        .expect("loopback polling cannot fail");
                }
            }
            let held_due = {
                let st = self.shared.lock().expect("chaos state poisoned");
                st.held.iter().any(|h| h.due <= now)
            };
            if !self.net.any_deliverable(now) && !held_due {
                break;
            }
        }

        self.observe(now);
        if self.all_inactive_at.is_none() && self.all_inactive() {
            self.all_inactive_at = Some(now);
        }
        self.clock.advance(1);
        self.now += 1;
    }

    /// Record status transitions at true time and resolve pending
    /// re-convergences.
    fn observe(&mut self, now: Time) {
        for (pid, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            let cur = (node.status(), node.left());
            let prev = self.statuses[pid];
            if prev.map(|(s, _)| s) != Some(cur.0) {
                match cur.0 {
                    Status::Crashed => self.crashes.push((pid, now)),
                    Status::NvInactive => self.nv_inactivations.push((pid, now)),
                    Status::Active => {
                        // Crashed -> Active is only reachable via revive.
                        if prev.map(|(s, _)| s) == Some(Status::Crashed) {
                            self.revives.push((pid, now));
                            self.pending_reconv.push((pid, node.epoch(), now, None));
                            self.all_inactive_at = None;
                        }
                    }
                }
            }
            if prev.map(|(_, l)| l) != Some(cur.1) && cur.1 {
                self.leaves.push((pid, now));
            }
            self.statuses[pid] = Some(cur);
        }
        let mut i = 0;
        while i < self.pending_reconv.len() {
            let (pid, epoch, t0, detected) = self.pending_reconv[i];
            let mut detected = detected;
            if detected.is_none()
                && self.nodes[0].as_ref().is_some_and(|coord| {
                    coord
                        .registered_epoch(pid)
                        .is_some_and(|bar| hb_core::serial::serial_ge(bar, epoch))
                })
            {
                detected = Some(now);
                self.reconv_detects.push((pid, now - t0));
            }
            let stable = detected.is_some()
                && self.nodes[pid].as_ref().is_some_and(|n| {
                    n.status() == Status::Active && n.joined() && n.epoch() == epoch
                });
            if stable {
                self.reconv_stables.push((pid, now - t0));
                self.pending_reconv.remove(i);
            } else {
                self.pending_reconv[i].3 = detected;
                i += 1;
            }
        }
    }

    fn revives_pending(&self) -> bool {
        self.injections
            .iter()
            .any(|&(t, _, cmd)| cmd == Command::Revive && t >= self.now)
    }

    /// Run until true tick `t` or until everything is inactive (a pending
    /// revive keeps the run alive — a crashed node is coming back).
    pub fn run_until(&mut self, t: Time) {
        while self.now < t && (!self.all_inactive() || self.revives_pending()) {
            self.step();
        }
    }

    /// Finish the run and produce the shared summary (`source: "live"`).
    pub fn into_summary(self) -> RunSummary {
        let st = self.shared.lock().expect("chaos state poisoned");
        let first_crash = self.crashes.iter().map(|&(_, t)| t).min();
        let detection_delay = match (first_crash, self.all_inactive_at) {
            (Some(c), Some(d)) => Some(d.saturating_sub(c)),
            _ => None,
        };
        let false_inactivations = if self.crashes.is_empty() {
            self.nv_inactivations.len() as u32
        } else {
            0
        };
        let final_status: Vec<Status> = self
            .nodes
            .iter()
            .map(|n| n.as_ref().map_or(Status::Active, |n| n.status()))
            .collect();
        let (stale_admitted, stale_filtered) =
            self.nodes[0].as_ref().map_or((0, 0), |c| c.stale_beats());
        RunSummary {
            source: "live",
            duration: self.now,
            messages_sent: st.sent,
            messages_delivered: self.net.stats().delivered,
            messages_lost: st.lost + self.net.stats().lost,
            crashes: self.crashes,
            nv_inactivations: self.nv_inactivations,
            leaves: self.leaves,
            revives: self.revives,
            reconv_detect: self.reconv_detects.iter().map(|&(_, d)| d).max(),
            reconv_stable: self.reconv_stables.iter().map(|&(_, d)| d).max(),
            stale_beats_admitted: stale_admitted,
            stale_beats_filtered: stale_filtered,
            detection_delay,
            false_inactivations,
            monitor: None,
            final_status,
        }
    }
}

/// Run `plan` on the live loopback runtime under virtual time and produce
/// the shared summary schema (`source: "live"`). Deterministic: the same
/// plan yields a byte-identical `to_json()`.
pub fn run_plan_live(plan: &FaultPlan) -> RunSummary {
    let mut cluster = ChaosCluster::new(plan.clone());
    cluster.run_until(plan.proto.duration);
    cluster.into_summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Link, ProtoSpec, Window};
    use hb_core::{FixLevel, Params, Variant};
    use hb_net::UdpTransport;

    fn proto(fix: FixLevel) -> ProtoSpec {
        ProtoSpec {
            variant: Variant::Binary,
            params: Params::new(2, 8).unwrap(),
            fix,
            n: 1,
            duration: 2_000,
            membership: false,
        }
    }

    #[test]
    fn faultless_plan_stays_alive() {
        let plan = FaultPlan::new("quiet", 1, proto(FixLevel::Full));
        let s = run_plan_live(&plan);
        assert_eq!(s.source, "live");
        assert_eq!(s.false_inactivations, 0);
        assert!(s.messages_lost == 0 && s.messages_delivered > 0);
    }

    #[test]
    fn crash_is_detected_under_burst_loss() {
        // Seed-pinned, as in the sim counterpart: this seed survives the
        // burst weather until the scheduled crash.
        let plan = FaultPlan::new("crash", 1, proto(FixLevel::Full))
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: crate::pipeline::burst_model(0.05, 2.0),
            })
            .with(FaultSpec::Crash { pid: 1, at: 500 });
        let s = run_plan_live(&plan);
        assert_eq!(s.crashes, vec![(1, 500)]);
        let d = s.detection_delay.expect("crash must be detected");
        let bound = u64::from(
            Params::new(2, 8)
                .unwrap()
                .p0_bound_corrected(Variant::Binary),
        );
        assert!(d <= bound, "delay {d} > bound {bound}");
    }

    #[test]
    fn duplication_inflates_delivery_and_reorder_holds_frames_back() {
        let plan = FaultPlan::new("shape", 4, proto(FixLevel::Full))
            .with(FaultSpec::Duplicate {
                window: Window::always(),
                link: Link::any(),
                p: 1.0,
            })
            .with(FaultSpec::Reorder {
                window: Window::always(),
                link: Link::any(),
                p: 0.5,
                max_extra: 2,
            });
        let s = run_plan_live(&plan);
        assert!(
            s.messages_delivered > s.messages_sent,
            "{} delivered vs {} sent",
            s.messages_delivered,
            s.messages_sent
        );
        assert_eq!(s.false_inactivations, 0, "bounded shaping is harmless");
    }

    #[test]
    fn fast_clock_drift_fires_watchdogs_early() {
        // The participant's clock runs 25% fast with no compensating
        // traffic changes: its corrected watchdog (2·tmax = 16 local
        // ticks) fires after only ~12.8 true ticks of silence. A long
        // enough burst starves it past the early deadline while a
        // true-time node would have survived; eventually drift alone makes
        // the run strictly worse than the same plan without drift.
        let mk = |drift: bool| {
            let mut plan =
                FaultPlan::new("drift", 21, proto(FixLevel::Full)).with(FaultSpec::Loss {
                    window: Window::always(),
                    link: Link::any(),
                    model: crate::pipeline::burst_model(0.25, 12.0),
                });
            if drift {
                plan = plan.with(FaultSpec::Drift {
                    pid: 1,
                    offset: 0,
                    num: 5,
                    den: 4,
                });
            }
            run_plan_live(&plan)
        };
        let drifted = mk(true);
        let straight = mk(false);
        assert!(
            drifted.false_inactivations >= straight.false_inactivations,
            "drift cannot help: {} vs {}",
            drifted.false_inactivations,
            straight.false_inactivations
        );
        // The drifted node observes a different local schedule, so the
        // runs must genuinely differ.
        assert_ne!(drifted.to_json(), straight.to_json());
    }

    #[test]
    fn replay_is_byte_identical() {
        let plan = FaultPlan::new("replay", 11, proto(FixLevel::ReceivePriority))
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: hb_sim::LossModel::Bernoulli(0.2),
            })
            .with(FaultSpec::Drift {
                pid: 1,
                offset: 0,
                num: 101,
                den: 100,
            })
            .with(FaultSpec::Crash { pid: 1, at: 700 });
        let a = run_plan_live(&plan).to_json();
        let b = run_plan_live(&plan).to_json();
        assert_eq!(a, b);
        let mut other = plan.clone();
        other.seed = 12;
        assert_ne!(run_plan_live(&other).to_json(), a);
    }

    #[test]
    fn decorator_shapes_traffic_over_real_udp_sockets() {
        // The decorator is substrate-agnostic: wrap two UDP endpoints in
        // the same pipeline (duplicate every frame) and watch one beat
        // arrive twice through real sockets.
        let plan = FaultPlan::new("udp", 3, proto(FixLevel::Full)).with(FaultSpec::Duplicate {
            window: Window::always(),
            link: Link::any(),
            p: 1.0,
        });
        let shared = ChaosNet::new(FaultPipeline::new(&plan));
        let mut a = UdpTransport::bind("127.0.0.1:0").unwrap();
        let b = UdpTransport::bind("127.0.0.1:0").unwrap();
        a.add_peer(1, b.local_addr().unwrap());
        let mut a = ChaosTransport::new(a, Arc::clone(&shared));
        let mut b = ChaosTransport::new(b, shared);
        let frame = Frame::beat(0, hb_core::Heartbeat::plain());
        a.send(0, 1, &frame, 2).unwrap();
        let mut got = 0;
        for _ in 0..100 {
            b.wait(Duration::from_millis(20)).unwrap();
            while let Some(r) = b.try_recv(0).unwrap() {
                assert_eq!(r.frame, frame);
                got += 1;
            }
            if got >= 2 {
                break;
            }
        }
        assert_eq!(got, 2, "one send, two datagrams");
    }
}
