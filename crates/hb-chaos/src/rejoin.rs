//! The §7 rejoin demonstration: one seed-pinned reorder + crash + revive
//! plan, run with epochs off (naive rejoin at
//! [`FixLevel::CorrectedBounds`]) and on ([`FixLevel::Full`]).
//!
//! The scenario manufactures exactly the hazard §7 introduces epochs
//! for: replies the first incarnation sent just before its crash are
//! held back by bounded reordering and arrive *after* the revived
//! incarnation has re-registered. A naive coordinator admits those
//! stale beats as fresh liveness evidence
//! ([`RunSummary::stale_beats_admitted`]); the epoch bar filters every
//! one of them while re-converging within the corrected §6.2 bound.
//! The checked-in `artifacts/rejoin_{sim,live}.json` files are emitted
//! from this module (`chaos_campaign --rejoin`), and CI replays the demo
//! on both backends expecting byte-identical output.

use hb_core::{FixLevel, Params, Pid, Variant};
use hb_sim::channel::Time;
use hb_sim::schema::RunSummary;

use crate::plan::{FaultPlan, FaultSpec, Link, ProtoSpec, Window};
use crate::{run_plan_monitored, Backend};

/// The participant that crashes and revives in the demo.
pub const DEMO_PID: Pid = 1;

/// Crash tick of the demo plan.
pub const DEMO_CRASH_AT: Time = 200;

/// Revive tick of the demo plan: right after the crash, so the fresh
/// incarnation's first join beat (due `tmin` after the restart) lands
/// before the starved coordinator's halving chain expires.
pub const DEMO_REVIVE_AT: Time = 201;

/// The reorder + crash + revive plan at a given fix level. Everything
/// except the fix level (and the name recording it) is identical, so
/// the naive and epoch-tagged runs face the same adversary.
pub fn rejoin_demo_plan(fix: FixLevel, seed: u64) -> FaultPlan {
    let proto = ProtoSpec {
        variant: Variant::Expanding,
        params: Params::new(2, 8).unwrap(),
        fix,
        n: 1,
        duration: 400,
        membership: false,
    };
    FaultPlan::new(format!("rejoin-demo/{}/s{seed}", fix.name()), seed, proto)
        // Hold back the doomed incarnation's final reply: the one beat it
        // sends in the last round before the crash may be delayed past
        // the revived incarnation's re-registration. The window must not
        // reach further back — delaying earlier replies starves the
        // coordinator into NV-inactivation before the revive.
        .with(FaultSpec::Reorder {
            window: Window::between(DEMO_CRASH_AT - 9, DEMO_CRASH_AT),
            link: Link::between(DEMO_PID, 0),
            p: 1.0,
            max_extra: 32,
        })
        .with(FaultSpec::Crash {
            pid: DEMO_PID,
            at: DEMO_CRASH_AT,
        })
        .with(FaultSpec::Revive {
            pid: DEMO_PID,
            at: DEMO_REVIVE_AT,
        })
}

/// The outcome of running the demo on one backend.
#[derive(Clone, Debug)]
pub struct RejoinDemo {
    /// The backend that executed both runs.
    pub backend: Backend,
    /// The shared seed.
    pub seed: u64,
    /// The run with epochs off ([`FixLevel::CorrectedBounds`]).
    pub naive: RunSummary,
    /// The run with the epoch bar on ([`FixLevel::Full`]).
    pub epoch: RunSummary,
    /// Whether re-running both plans reproduced both summaries
    /// byte-for-byte.
    pub replay_identical: bool,
}

/// Run the demo twice per fix level on `backend`, checking seeded
/// replay determinism along the way. Both runs carry a streaming R1–R3
/// monitor: the §7 hazard is a *liveness-evidence* corruption, not a
/// requirement breach (the stale beats only ever keep the coordinator
/// alive), so the demo's verdicts must be clean at both fix levels —
/// [`separates`](RejoinDemo::separates) checks that too.
pub fn run_rejoin_demo(backend: Backend, seed: u64) -> RejoinDemo {
    let run = |fix| {
        let plan = rejoin_demo_plan(fix, seed);
        (
            run_plan_monitored(&plan, backend),
            run_plan_monitored(&plan, backend),
        )
    };
    let (naive, naive_again) = run(FixLevel::CorrectedBounds);
    let (epoch, epoch_again) = run(FixLevel::Full);
    let replay_identical =
        naive.to_json() == naive_again.to_json() && epoch.to_json() == epoch_again.to_json();
    RejoinDemo {
        backend,
        seed,
        naive,
        epoch,
        replay_identical,
    }
}

impl RejoinDemo {
    /// Whether the demo shows the §7 separation: the naive run admitted
    /// at least one stale beat, the epoch run admitted none and
    /// re-converged, and both runs replayed deterministically.
    pub fn separates(&self) -> bool {
        self.replay_identical
            && self.naive.stale_beats_admitted >= 1
            && self.epoch.stale_beats_admitted == 0
            && self.epoch.stale_beats_filtered >= 1
            && self.epoch.reconv_detect.is_some()
            && self.epoch.reconv_stable.is_some()
            && self.naive.monitor.is_some_and(|m| m.clean())
            && self.epoch.monitor.is_some_and(|m| m.clean())
    }

    /// The demo as a single-line JSON artifact (the checked-in
    /// `artifacts/rejoin_*.json` format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"record\":\"rejoin_demo\",\"backend\":\"{}\",\"seed\":{},\
             \"crash_at\":{DEMO_CRASH_AT},\"revive_at\":{DEMO_REVIVE_AT},\
             \"replay_identical\":{},\"separates\":{},\
             \"naive_plan\":{},\"epoch_plan\":{},\
             \"naive\":{},\"epoch\":{}}}",
            self.backend.name(),
            self.seed,
            self.replay_identical,
            self.separates(),
            rejoin_demo_plan(FixLevel::CorrectedBounds, self.seed).to_json(),
            rejoin_demo_plan(FixLevel::Full, self.seed).to_json(),
            self.naive.to_json(),
            self.epoch.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "seed-search helper, run manually"]
    fn seed_search() {
        for seed in 1..40u64 {
            let sim = run_rejoin_demo(Backend::Sim, seed);
            let live = run_rejoin_demo(Backend::Live, seed);
            println!(
                "seed {seed}: sim sep={} (adm {} flt {} rc {:?}) live sep={} (adm {} flt {} rc {:?})",
                sim.separates(),
                sim.naive.stale_beats_admitted,
                sim.epoch.stale_beats_filtered,
                sim.epoch.reconv_detect,
                live.separates(),
                live.naive.stale_beats_admitted,
                live.epoch.stale_beats_filtered,
                live.epoch.reconv_detect,
            );
        }
    }

    #[test]
    fn demo_plans_validate_and_round_trip() {
        for fix in [FixLevel::CorrectedBounds, FixLevel::Full] {
            let plan = rejoin_demo_plan(fix, 1);
            plan.validate().expect("demo plan must validate");
            assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
        }
    }

    #[test]
    fn sim_demo_separates_naive_from_epoch_rejoin() {
        let demo = run_rejoin_demo(Backend::Sim, 1);
        assert!(
            demo.separates(),
            "naive {:?} / epoch {:?}",
            demo.naive,
            demo.epoch
        );
        // The revived node re-converges within the corrected bound.
        let bound = Time::from(
            Params::new(2, 8)
                .unwrap()
                .p0_bound_corrected(Variant::Expanding),
        );
        let d = demo.epoch.reconv_detect.unwrap();
        assert!(d <= bound, "reconvergence {d} > corrected bound {bound}");
        let s = demo.epoch.reconv_stable.unwrap();
        assert!(s >= d, "stability {s} before detection {d}");
    }

    #[test]
    fn live_demo_separates_naive_from_epoch_rejoin() {
        let demo = run_rejoin_demo(Backend::Live, 1);
        assert!(
            demo.separates(),
            "naive {:?} / epoch {:?}",
            demo.naive,
            demo.epoch
        );
    }

    #[test]
    fn demo_artifact_json_carries_both_runs() {
        let demo = run_rejoin_demo(Backend::Sim, 1);
        let json = demo.to_json();
        assert!(json.contains("\"record\":\"rejoin_demo\""), "{json}");
        assert!(
            json.contains("\"naive\":{\"record\":\"run_summary\""),
            "{json}"
        );
        assert!(
            json.contains("\"epoch\":{\"record\":\"run_summary\""),
            "{json}"
        );
        assert!(json.contains("\"replay_identical\":true"), "{json}");
    }
}
