//! The fault pipeline: a compiled [`FaultPlan`] deciding the fate of
//! every message.
//!
//! [`FaultPipeline`] is the single injection engine shared by both
//! substrates: the simulator installs it as the world's
//! [`FaultHook`](hb_sim::FaultHook), and the live runtime consults it
//! from the [`ChaosTransport`](crate::live::ChaosTransport) decorator.
//! All fault randomness lives in the pipeline's own RNG, seeded from the
//! plan — replaying a plan with the same seed reproduces the exact fault
//! schedule, independently of the substrate's delay randomness.
//!
//! Per message the pipeline evaluates, in order:
//!
//! 1. **structural cuts** — active partitions and one-way cuts drop
//!    matching messages outright (no randomness consumed);
//! 2. **loss models** — every active matching [`Loss`](FaultSpec::Loss)
//!    fault steps its own chain (Gilbert–Elliott burst state is per
//!    fault) and may drop;
//! 3. **duplication** — each active matching duplicate fault adds a copy
//!    with probability `p`;
//! 4. **reordering** — each active matching reorder fault holds the
//!    message back `1..=max_extra` extra ticks with probability `p`;
//! 5. **delay spikes** — active spikes add their flat extra delay.
//!
//! Loss chains step even for structurally dropped messages, so a burst
//! chain's state depends only on the message sequence, not on which
//! other faults are active.

use hb_core::Pid;
use hb_sim::channel::Time;
use hb_sim::{FaultHook, LossModel, SendFate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::{FaultPlan, FaultSpec, Link, Window};

/// One compiled message-level fault with its mutable state.
#[derive(Clone, Debug)]
enum Stage {
    Loss {
        window: Window,
        link: Link,
        model: LossModel,
        ge_bad: bool,
    },
    Partition {
        window: Window,
        groups: Vec<Vec<Pid>>,
    },
    OneWay {
        window: Window,
        src: Vec<Pid>,
        dst: Vec<Pid>,
    },
    Duplicate {
        window: Window,
        link: Link,
        p: f64,
    },
    Reorder {
        window: Window,
        link: Link,
        p: f64,
        max_extra: u32,
    },
    DelaySpike {
        window: Window,
        extra: u32,
    },
}

/// Running totals of what the pipeline did to the traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Messages the pipeline was consulted for.
    pub decided: u64,
    /// Messages dropped (structurally or by a loss model).
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Messages given extra delay (reorder or spike).
    pub delayed: u64,
}

/// A compiled, stateful fault-injection engine for one plan run.
#[derive(Clone, Debug)]
pub struct FaultPipeline {
    stages: Vec<Stage>,
    rng: StdRng,
    stats: PipelineStats,
}

impl FaultPipeline {
    /// Compile the message-level faults of `plan`. Schedule-level faults
    /// (crash / start / leave / revive / drift) are the harness's job and
    /// are ignored here.
    pub fn new(plan: &FaultPlan) -> Self {
        let stages = plan
            .faults
            .iter()
            .filter_map(|f| match f.clone() {
                FaultSpec::Loss {
                    window,
                    link,
                    model,
                } => Some(Stage::Loss {
                    window,
                    link,
                    model,
                    ge_bad: false,
                }),
                FaultSpec::Partition { window, groups } => {
                    Some(Stage::Partition { window, groups })
                }
                FaultSpec::OneWay { window, src, dst } => Some(Stage::OneWay { window, src, dst }),
                FaultSpec::Duplicate { window, link, p } => {
                    Some(Stage::Duplicate { window, link, p })
                }
                FaultSpec::Reorder {
                    window,
                    link,
                    p,
                    max_extra,
                } => Some(Stage::Reorder {
                    window,
                    link,
                    p,
                    max_extra,
                }),
                FaultSpec::DelaySpike { window, extra } => {
                    Some(Stage::DelaySpike { window, extra })
                }
                FaultSpec::Drift { .. }
                | FaultSpec::Crash { .. }
                | FaultSpec::Start { .. }
                | FaultSpec::Leave { .. }
                | FaultSpec::Revive { .. } => None,
            })
            .collect();
        FaultPipeline {
            stages,
            // Decorrelated from the substrate's delay RNG (which is seeded
            // with the raw plan seed): the fault schedule must not shift
            // when a substrate changes how it draws delays.
            rng: StdRng::seed_from_u64(plan.seed ^ 0x6368_616f_735f_7231),
            stats: PipelineStats::default(),
        }
    }

    /// What the pipeline has done so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Decide the fate of one message (shared by both backends).
    pub fn decide(&mut self, now: Time, src: Pid, dst: Pid) -> SendFate {
        self.stats.decided += 1;
        let mut cut = false;
        let mut lost = false;
        let mut copies = 1u32;
        let mut extra = 0u32;
        for stage in &mut self.stages {
            match stage {
                Stage::Partition { window, groups } if window.contains(now) => {
                    let group_of = |pid: Pid| groups.iter().position(|g| g.contains(&pid));
                    if let (Some(a), Some(b)) = (group_of(src), group_of(dst)) {
                        cut |= a != b;
                    }
                }
                Stage::OneWay {
                    window,
                    src: cut_src,
                    dst: cut_dst,
                } if window.contains(now) => {
                    cut |= cut_src.contains(&src) && cut_dst.contains(&dst);
                }
                Stage::Loss {
                    window,
                    link,
                    model,
                    ge_bad,
                } if window.contains(now) && link.matches(src, dst) => {
                    lost |= step_loss(&mut self.rng, model, ge_bad);
                }
                Stage::Duplicate { window, link, p }
                    if !cut && window.contains(now) && link.matches(src, dst) =>
                {
                    copies += u32::from(self.rng.gen_bool(*p));
                }
                Stage::Reorder {
                    window,
                    link,
                    p,
                    max_extra,
                } if !cut
                    && *max_extra > 0
                    && window.contains(now)
                    && link.matches(src, dst)
                    && self.rng.gen_bool(*p) =>
                {
                    extra += self.rng.gen_range(1..=*max_extra);
                }
                Stage::DelaySpike { window, extra: e } if !cut && window.contains(now) => {
                    extra += *e;
                }
                _ => {}
            }
        }
        if cut || lost {
            self.stats.dropped += 1;
            return SendFate::Drop;
        }
        self.stats.duplicated += u64::from(copies - 1);
        if extra > 0 {
            self.stats.delayed += 1;
        }
        SendFate::Deliver {
            copies,
            extra_delay: extra,
        }
    }
}

/// One loss decision, stepping the fault's own burst chain.
fn step_loss(rng: &mut StdRng, model: &LossModel, ge_bad: &mut bool) -> bool {
    match *model {
        LossModel::Bernoulli(p) => rng.gen_bool(p),
        LossModel::GilbertElliott {
            to_bad,
            to_good,
            good_loss,
            bad_loss,
        } => {
            if *ge_bad {
                if rng.gen_bool(to_good) {
                    *ge_bad = false;
                }
            } else if rng.gen_bool(to_bad) {
                *ge_bad = true;
            }
            rng.gen_bool(if *ge_bad { bad_loss } else { good_loss })
        }
    }
}

impl FaultHook for FaultPipeline {
    fn fate(&mut self, now: Time, src: Pid, dst: Pid) -> SendFate {
        self.decide(now, src, dst)
    }
}

/// Derive a Gilbert–Elliott burst model from an average loss probability
/// `p` and a mean burst length `len` (in messages): the bad state always
/// drops, the good state never does, bursts end with probability
/// `1/len`, and the entry rate is chosen so the stationary loss equals
/// `p`. `p = 0` yields a lossless model; `len <= 1` degenerates to
/// near-independent losses.
///
/// # Panics
///
/// Panics unless `0 <= p < 1`.
pub fn burst_model(p: f64, len: f64) -> LossModel {
    assert!((0.0..1.0).contains(&p), "average loss must be in [0, 1)");
    if p == 0.0 {
        return LossModel::Bernoulli(0.0);
    }
    let to_good = (1.0 / len.max(1.0)).min(1.0);
    let to_bad = (to_good * p / (1.0 - p)).min(1.0);
    LossModel::GilbertElliott {
        to_bad,
        to_good,
        good_loss: 0.0,
        bad_loss: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ProtoSpec;
    use hb_core::{FixLevel, Params, Variant};

    fn base_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            "t",
            seed,
            ProtoSpec {
                variant: Variant::Binary,
                params: Params::new(2, 8).unwrap(),
                fix: FixLevel::Full,
                n: 3,
                duration: 1_000,
                membership: false,
            },
        )
    }

    #[test]
    fn partition_cuts_across_groups_only() {
        let plan = base_plan(1).with(FaultSpec::Partition {
            window: Window::between(10, 20),
            groups: vec![vec![0, 1], vec![2, 3]],
        });
        let mut pl = FaultPipeline::new(&plan);
        // Inside the window: cross-group drops, intra-group passes.
        assert_eq!(pl.decide(10, 0, 2), SendFate::Drop);
        assert_eq!(pl.decide(15, 3, 1), SendFate::Drop);
        assert_eq!(pl.decide(15, 0, 1), SendFate::clean());
        assert_eq!(pl.decide(15, 2, 3), SendFate::clean());
        // Outside: everything passes.
        assert_eq!(pl.decide(9, 0, 2), SendFate::clean());
        assert_eq!(pl.decide(20, 0, 2), SendFate::clean());
        assert_eq!(pl.stats().dropped, 2);
    }

    #[test]
    fn one_way_cut_is_asymmetric() {
        let plan = base_plan(1).with(FaultSpec::OneWay {
            window: Window::always(),
            src: vec![1],
            dst: vec![0],
        });
        let mut pl = FaultPipeline::new(&plan);
        assert_eq!(pl.decide(0, 1, 0), SendFate::Drop, "cut direction");
        assert_eq!(pl.decide(0, 0, 1), SendFate::clean(), "reverse flows");
    }

    #[test]
    fn loss_rate_tracks_the_model() {
        let plan = base_plan(3).with(FaultSpec::Loss {
            window: Window::always(),
            link: Link::any(),
            model: LossModel::Bernoulli(0.3),
        });
        let mut pl = FaultPipeline::new(&plan);
        for _ in 0..10_000 {
            pl.decide(0, 0, 1);
        }
        let rate = pl.stats().dropped as f64 / pl.stats().decided as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn duplication_reorder_and_spikes_shape_delivery() {
        let plan = base_plan(4)
            .with(FaultSpec::Duplicate {
                window: Window::always(),
                link: Link::any(),
                p: 1.0,
            })
            .with(FaultSpec::Reorder {
                window: Window::always(),
                link: Link::any(),
                p: 1.0,
                max_extra: 3,
            })
            .with(FaultSpec::DelaySpike {
                window: Window::between(100, 200),
                extra: 7,
            });
        let mut pl = FaultPipeline::new(&plan);
        match pl.decide(0, 0, 1) {
            SendFate::Deliver {
                copies,
                extra_delay,
            } => {
                assert_eq!(copies, 2);
                assert!((1..=3).contains(&extra_delay), "got {extra_delay}");
            }
            SendFate::Drop => panic!("nothing drops here"),
        }
        match pl.decide(150, 0, 1) {
            SendFate::Deliver { extra_delay, .. } => {
                assert!((8..=10).contains(&extra_delay), "spike adds 7");
            }
            SendFate::Drop => panic!("nothing drops here"),
        }
        assert_eq!(pl.stats().duplicated, 2);
        assert_eq!(pl.stats().delayed, 2);
    }

    #[test]
    fn same_seed_same_fate_stream() {
        let plan = base_plan(9)
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: burst_model(0.2, 4.0),
            })
            .with(FaultSpec::Duplicate {
                window: Window::always(),
                link: Link::any(),
                p: 0.1,
            });
        let stream = |plan: &FaultPlan| {
            let mut pl = FaultPipeline::new(plan);
            (0..500).map(|t| pl.decide(t, 0, 1)).collect::<Vec<_>>()
        };
        assert_eq!(stream(&plan), stream(&plan));
        let mut other = plan.clone();
        other.seed = 10;
        assert_ne!(stream(&plan), stream(&other));
    }

    #[test]
    fn burst_model_hits_the_requested_average() {
        for (p, len) in [(0.1, 4.0), (0.3, 8.0), (0.05, 2.0)] {
            let m = burst_model(p, len);
            assert!(
                (m.average_loss() - p).abs() < 1e-9,
                "p={p} len={len}: got {}",
                m.average_loss()
            );
        }
        assert_eq!(burst_model(0.0, 4.0).average_loss(), 0.0);
    }

    #[test]
    fn drops_beat_duplication() {
        // A partitioned message never consumes duplication randomness, but
        // the burst chain still steps (state stays message-indexed).
        let plan = base_plan(2)
            .with(FaultSpec::Partition {
                window: Window::always(),
                groups: vec![vec![0], vec![1]],
            })
            .with(FaultSpec::Duplicate {
                window: Window::always(),
                link: Link::any(),
                p: 1.0,
            });
        let mut pl = FaultPipeline::new(&plan);
        assert_eq!(pl.decide(0, 0, 1), SendFate::Drop);
        assert_eq!(pl.stats().duplicated, 0);
    }
}
