//! A minimal JSON reader for fault-plan files.
//!
//! The offline build has no serde, so plans are parsed by hand: a small
//! recursive-descent parser into a [`Value`] tree plus typed accessors
//! that turn shape errors into readable messages. Writing stays with the
//! hand-formatted style the workspace already uses for its run records.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; plans only use small integers and
    /// probabilities, both exact in a double).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Ordered map so error messages and re-emission are
    /// deterministic.
    Obj(BTreeMap<String, Value>),
}

/// A parse or shape error, with enough context to fix the plan file.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError("dangling escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        other => return err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError(format!("bad number '{text}' at byte {start}")))
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// This value as an object map.
    pub fn as_obj(&self) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Obj(m) => Ok(m),
            other => err(format!("expected object, found {other:?}")),
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(v) => Ok(v),
            other => err(format!("expected array, found {other:?}")),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => err(format!("expected string, found {other:?}")),
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected boolean, found {other:?}")),
        }
    }

    /// This value as a float.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    /// This value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return err(format!("expected unsigned integer, found {n}"));
        }
        Ok(n as u64)
    }

    /// Fetch a required field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, JsonError> {
        self.as_obj()?
            .get(name)
            .ok_or_else(|| JsonError(format!("missing field \"{name}\"")))
    }

    /// Fetch an optional field (absent or `null` → `None`).
    pub fn opt_field(&self, name: &str) -> Result<Option<&Value>, JsonError> {
        Ok(self
            .as_obj()?
            .get(name)
            .filter(|v| !matches!(v, Value::Null)))
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\ny"}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.field("a").unwrap().as_arr().unwrap()[0].as_u64(), Ok(1));
        assert_eq!(v.field("a").unwrap().as_arr().unwrap()[1].as_f64(), Ok(2.5));
        assert_eq!(v.field("b").unwrap().opt_field("c"), Ok(None));
        assert_eq!(
            v.field("b").unwrap().field("d").unwrap(),
            &Value::Bool(true)
        );
        assert_eq!(v.field("e").unwrap().as_str(), Ok("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1}x",
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn shape_errors_are_typed() {
        let v = Value::parse(r#"{"n":1.5,"s":"x"}"#).unwrap();
        assert!(v.field("n").unwrap().as_u64().is_err(), "fraction");
        assert!(v.field("s").unwrap().as_f64().is_err());
        assert!(v.field("missing").is_err());
        assert!(v.as_arr().is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "a\"b\\c\nd";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.field("k").unwrap().as_str(), Ok(s));
    }
}
