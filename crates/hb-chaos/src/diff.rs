//! Diffing two campaign reports: the sim-vs-live gate.
//!
//! The simulator and the live runtime execute the same plans, but their
//! fault randomness is consumed in different orders, so per-cell
//! statistics are two independent samples of the same distribution —
//! byte equality is the wrong question. This module asks the right one:
//! do the two reports tell the same protocol story?
//!
//! * **Structure is exact.** Same protocol context (variant, timing
//!   parameters, n, duration, seed count) and the same grid, cell for
//!   cell; the analytically derived `claimed_bound` / `corrected_bound`
//!   and `runs` must match to the digit.
//! * **Qualitative flags must agree.** Whether a cell saw bound
//!   violations, false suspicions, pre-crash starvation, stale-beat
//!   admission, missed detections or missed re-convergences is the
//!   protocol story. A flag that is set on one side and clear on the
//!   other is a hard divergence — unless both sides sit within a
//!   one-run slack of zero, where a single unlucky seed can flip it
//!   (reported, but tolerated).
//! * **Quantities get calibrated tolerances.** Counters over seeds are
//!   binomial samples (tolerance scales with `runs`); delay statistics
//!   live on the tick grid (tolerance scales with `tmax`, and means are
//!   only comparable when both sides have a population); message rates
//!   are tight (the protocols send the same traffic modulo lost
//!   retries).
//!
//! [`diff_reports`] returns every [`Divergence`] found;
//! [`DiffReport::hard`] is the CI gate (`chaos_campaign --diff A B`
//! exits non-zero iff it is non-empty against the checked-in artifact
//! pair).

use crate::json::{JsonError, Value};

/// How bad one divergence is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Within calibrated tolerance or flip slack: reported for the
    /// record, does not fail the gate.
    Note,
    /// Outside tolerance: the reports tell different stories.
    Hard,
}

/// One discrepancy between the two reports.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Grid-cell label (`fix/loss/burst/drift/partition`), or `"campaign"`
    /// for report-level mismatches.
    pub cell: String,
    /// The field that diverged.
    pub field: String,
    /// Value in the first report, rendered.
    pub left: String,
    /// Value in the second report, rendered.
    pub right: String,
    /// Whether the gate fails on it.
    pub severity: Severity,
}

/// Everything [`diff_reports`] found.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All divergences, in report order.
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// The gate-failing subset.
    pub fn hard(&self) -> Vec<&Divergence> {
        self.divergences
            .iter()
            .filter(|d| d.severity == Severity::Hard)
            .collect()
    }

    /// Human rendering, one line per divergence plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.divergences {
            let tag = match d.severity {
                Severity::Note => "note",
                Severity::Hard => "HARD",
            };
            out.push_str(&format!(
                "[{tag}] {}: {} = {} vs {}\n",
                d.cell, d.field, d.left, d.right
            ));
        }
        out.push_str(&format!(
            "{} divergence(s), {} hard\n",
            self.divergences.len(),
            self.hard().len()
        ));
        out
    }
}

/// Calibrated tolerances. The defaults are set against the checked-in
/// `campaign_gm98_sim.json` / `campaign_gm98_live.json` pair: wide
/// enough that two honest samples of the same protocol pass, tight
/// enough that a protocol-level regression (a bound violated on one
/// substrate only, detection lost wholesale) fails.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Fraction of `runs` two per-run counters (`detected`,
    /// `reconverged`, `stabilised`, `down_before_crash`,
    /// `violations_*`) may differ by.
    pub run_frac: f64,
    /// Fraction of `runs` two event counters (`false_suspicions`,
    /// `stale_admitted` — several events can land in one run) may
    /// differ by.
    pub event_frac: f64,
    /// Tick tolerance for delay statistics, as a multiple of the
    /// report's `tmax`.
    pub tick_frac_of_tmax: f64,
    /// Absolute tolerance on `msg_per_tick`.
    pub rate_abs: f64,
    /// A qualitative flag flip is only a note when both sides are at
    /// most this many runs' worth of events away from zero.
    pub flip_slack: u64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            run_frac: 0.35,
            event_frac: 0.75,
            tick_frac_of_tmax: 1.0,
            rate_abs: 0.02,
            flip_slack: 1,
        }
    }
}

/// Parse both documents and diff them. Shape errors (missing fields,
/// wrong types) surface as [`JsonError`]; protocol-story differences
/// come back inside the [`DiffReport`].
pub fn diff_reports(left: &str, right: &str, tol: &Tolerances) -> Result<DiffReport, JsonError> {
    let a = Value::parse(left)?;
    let b = Value::parse(right)?;
    let mut report = DiffReport::default();

    // Report-level context must match exactly — except `backend`, which
    // is the whole point of the comparison, and `name`, which embeds it.
    // `monitor` is context too: comparing a monitored campaign against an
    // unmonitored one would vacuously pass every monitor check. (Absent
    // in pre-monitor reports → both default to false.)
    for field in [
        "record", "variant", "tmin", "tmax", "n", "duration", "seeds", "monitor",
    ] {
        let (l, r) = (a.opt_field(field)?, b.opt_field(field)?);
        if l != r {
            report.divergences.push(Divergence {
                cell: "campaign".into(),
                field: field.into(),
                left: l.map_or_else(|| "absent".to_string(), render),
                right: r.map_or_else(|| "absent".to_string(), render),
                severity: Severity::Hard,
            });
        }
    }
    let tmax = a.field("tmax")?.as_f64()?;
    let tick_tol = tol.tick_frac_of_tmax * tmax;

    let cells_a = a.field("cells")?.as_arr()?;
    let cells_b = b.field("cells")?.as_arr()?;
    if cells_a.len() != cells_b.len() {
        report.divergences.push(Divergence {
            cell: "campaign".into(),
            field: "cells".into(),
            left: cells_a.len().to_string(),
            right: cells_b.len().to_string(),
            severity: Severity::Hard,
        });
        return Ok(report); // no cell pairing to compare
    }

    for (ca, cb) in cells_a.iter().zip(cells_b) {
        let label = cell_label(ca)?;
        if cell_label(cb)? != label {
            report.divergences.push(Divergence {
                cell: label,
                field: "grid".into(),
                left: cell_label(ca)?,
                right: cell_label(cb)?,
                severity: Severity::Hard,
            });
            continue; // different grid points: values aren't comparable
        }
        diff_cell(ca, cb, &label, tol, tick_tol, &mut report)?;
    }
    Ok(report)
}

fn diff_cell(
    ca: &Value,
    cb: &Value,
    label: &str,
    tol: &Tolerances,
    tick_tol: f64,
    report: &mut DiffReport,
) -> Result<(), JsonError> {
    let runs = ca.field("runs")?.as_f64()?;
    let mut push = |field: &str, l: f64, r: f64, severity: Severity| {
        report.divergences.push(Divergence {
            cell: label.to_string(),
            field: field.into(),
            left: trim_num(l),
            right: trim_num(r),
            severity,
        });
    };

    // Exact: the run count and the analytic bounds don't sample anything.
    for field in ["runs", "claimed_bound", "corrected_bound"] {
        let (l, r) = (ca.field(field)?.as_f64()?, cb.field(field)?.as_f64()?);
        if l != r {
            push(field, l, r, Severity::Hard);
        }
    }

    // Per-run counters: binomial over seeds.
    let run_tol = (tol.run_frac * runs).ceil();
    for field in [
        "detected",
        "down_before_crash",
        "reconverged",
        "stabilised",
        "violations_claimed",
        "violations_corrected",
    ] {
        let (l, r) = (ca.field(field)?.as_f64()?, cb.field(field)?.as_f64()?);
        if l != r {
            let sev = if (l - r).abs() <= run_tol {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(field, l, r, sev);
        }
    }

    // Event counters: several events can land in one run.
    let event_tol = (tol.event_frac * runs).ceil();
    for field in ["false_suspicions", "stale_admitted"] {
        let (l, r) = (ca.field(field)?.as_f64()?, cb.field(field)?.as_f64()?);
        if l != r {
            let sev = if (l - r).abs() <= event_tol {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(field, l, r, sev);
        }
    }

    // Qualitative flags: the protocol story. For the success counters
    // (`detected`, `reconverged`) the flag is "ever succeeds" — a
    // partial shortfall is sampling noise and already covered by the
    // run tolerance above; for the trouble counters it is "ever
    // troubles". A flip is hard unless both sides sit within the slack
    // of zero, where one unlucky seed can flip it.
    for field in [
        "detected",
        "reconverged",
        "stabilised",
        "down_before_crash",
        "violations_claimed",
        "violations_corrected",
        "false_suspicions",
        "stale_admitted",
    ] {
        let (l, r) = (ca.field(field)?.as_f64()?, cb.field(field)?.as_f64()?);
        if (l > 0.0) != (r > 0.0) {
            let sev = if l.max(r) <= tol.flip_slack as f64 {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(&format!("{field} (flag)"), l, r, sev);
        }
    }

    // Delay statistics: tick-grid quantities. Means and maxima are only
    // comparable when both sides have the underlying population —
    // otherwise one side's 0 is "no sample", not "zero delay", and the
    // flag comparison above already covers the story.
    let pairs = [
        ("detect_mean", "detected"),
        ("detect_max", "detected"),
        ("reconv_detect_mean", "reconverged"),
        ("reconv_detect_max", "reconverged"),
        ("reconv_stable_mean", "stabilised"),
        ("reconv_stable_max", "stabilised"),
    ];
    for (field, population) in pairs {
        let (pl, pr) = (
            ca.field(population)?.as_f64()?,
            cb.field(population)?.as_f64()?,
        );
        if pl == 0.0 || pr == 0.0 {
            continue;
        }
        let (l, r) = (ca.field(field)?.as_f64()?, cb.field(field)?.as_f64()?);
        if l != r {
            let sev = if (l - r).abs() <= tick_tol {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(field, l, r, sev);
        }
    }

    // Steady-state overhead: tight, the protocols send the same traffic.
    let (l, r) = (
        ca.field("msg_per_tick")?.as_f64()?,
        cb.field("msg_per_tick")?.as_f64()?,
    );
    if l != r {
        let sev = if (l - r).abs() <= tol.rate_abs {
            Severity::Note
        } else {
            Severity::Hard
        };
        push("msg_per_tick", l, r, sev);
    }

    // Streaming monitor verdicts (absent in pre-monitor reports → 0).
    // The run count is structural; the per-requirement firing counts are
    // per-run samples; whether a requirement fired *at all* in a cell is
    // protocol story and follows the qualitative-flag rule.
    let opt_num = |c: &Value, name: &str| -> Result<f64, JsonError> {
        match c.opt_field(name)? {
            Some(v) => v.as_f64(),
            None => Ok(0.0),
        }
    };
    let (l, r) = (opt_num(ca, "monitor_runs")?, opt_num(cb, "monitor_runs")?);
    if l != r {
        push("monitor_runs", l, r, Severity::Hard);
    }
    for field in ["monitor_clean", "monitor_r1", "monitor_r2", "monitor_r3"] {
        let (l, r) = (opt_num(ca, field)?, opt_num(cb, field)?);
        if l != r {
            let sev = if (l - r).abs() <= run_tol {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(field, l, r, sev);
        }
    }
    for field in ["monitor_r1", "monitor_r2", "monitor_r3"] {
        let (l, r) = (opt_num(ca, field)?, opt_num(cb, field)?);
        if (l > 0.0) != (r > 0.0) {
            let sev = if l.max(r) <= tol.flip_slack as f64 {
                Severity::Note
            } else {
                Severity::Hard
            };
            push(&format!("{field} (flag)"), l, r, sev);
        }
    }
    // First-violation tick: a tick-grid quantity, comparable only when
    // both sides saw a violation at all. On lossy cells it is the
    // *earliest* firing across all seeds — an extreme order statistic
    // over two independent loss realizations, so a wide gap there is
    // sampling, not a determinism break.
    let lossy = ca.field("loss")?.as_f64()? > 0.0 || cb.field("loss")?.as_f64()? > 0.0;
    let first = |c: &Value| -> Result<Option<f64>, JsonError> {
        match c.opt_field("monitor_first")? {
            Some(v) => Ok(Some(v.as_f64()?)),
            None => Ok(None),
        }
    };
    if let (Some(l), Some(r)) = (first(ca)?, first(cb)?) {
        if l != r {
            let sev = if lossy || (l - r).abs() <= tick_tol {
                Severity::Note
            } else {
                Severity::Hard
            };
            push("monitor_first", l, r, sev);
        }
    }
    Ok(())
}

/// The grid-point label of one cell object.
fn cell_label(cell: &Value) -> Result<String, JsonError> {
    Ok(format!(
        "{}/loss{}x{}/drift{}/part{}",
        cell.field("fix")?.as_str()?,
        trim_num(cell.field("loss")?.as_f64()?),
        trim_num(cell.field("burst")?.as_f64()?),
        cell.field("drift")?.as_str()?,
        trim_num(cell.field("partition")?.as_f64()?),
    ))
}

fn render(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Num(n) => trim_num(*n),
        other => format!("{other:?}"),
    }
}

/// Render a float without a trailing `.0` when it is integral.
fn trim_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(over: &[(&str, &str)]) -> String {
        let mut fields: Vec<(String, String)> = [
            ("fix", "\"original\""),
            ("loss", "0.02"),
            ("burst", "2"),
            ("drift", "\"1/1\""),
            ("partition", "0"),
            ("runs", "10"),
            ("detected", "10"),
            ("down_before_crash", "0"),
            ("detect_mean", "14.000"),
            ("detect_max", "14"),
            ("claimed_bound", "16"),
            ("corrected_bound", "22"),
            ("violations_claimed", "0"),
            ("violations_corrected", "0"),
            ("false_suspicions", "0"),
            ("msg_per_tick", "0.2490"),
            ("reconverged", "10"),
            ("reconv_detect_mean", "5.200"),
            ("reconv_detect_max", "6"),
            ("stabilised", "10"),
            ("reconv_stable_mean", "7.100"),
            ("reconv_stable_max", "9"),
            ("stale_admitted", "0"),
        ]
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
        for &(k, v) in over {
            let slot = fields
                .iter_mut()
                .find(|(fk, _)| fk == k)
                .expect("known field");
            slot.1 = v.to_string();
        }
        let body: Vec<String> = fields
            .into_iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    fn campaign(backend: &str, cells: &[String]) -> String {
        format!(
            "{{\"record\":\"campaign\",\"name\":\"t\",\"backend\":\"{backend}\",\
             \"variant\":\"binary\",\"tmin\":2,\"tmax\":8,\"n\":1,\"duration\":2000,\
             \"seeds\":10,\"cells\":[{}]}}",
            cells.join(",")
        )
    }

    #[test]
    fn identical_reports_diff_clean() {
        let doc = campaign("sim", &[cell(&[])]);
        let live = campaign("live", &[cell(&[])]);
        let d = diff_reports(&doc, &live, &Tolerances::default()).unwrap();
        assert!(d.divergences.is_empty(), "{}", d.render());
    }

    #[test]
    fn sampling_noise_is_a_note_and_regressions_are_hard() {
        let sim = campaign("sim", &[cell(&[])]);
        // Two seeds' worth of drift on a run counter: tolerated.
        let noisy = campaign(
            "live",
            &[cell(&[
                ("detected", "8"),
                ("reconverged", "8"),
                ("detect_mean", "15.1"),
            ])],
        );
        let d = diff_reports(&sim, &noisy, &Tolerances::default()).unwrap();
        assert!(!d.divergences.is_empty());
        assert!(d.hard().is_empty(), "{}", d.render());

        // Detection collapsing on one substrate: hard.
        let broken = campaign("live", &[cell(&[("detected", "2"), ("detect_mean", "19")])]);
        let d = diff_reports(&sim, &broken, &Tolerances::default()).unwrap();
        assert!(!d.hard().is_empty(), "{}", d.render());
    }

    #[test]
    fn qualitative_flips_split_on_the_slack() {
        let sim = campaign("sim", &[cell(&[])]);
        // One unlucky seed claims a violation: borderline, a note.
        let one = campaign("live", &[cell(&[("violations_claimed", "1")])]);
        let d = diff_reports(&sim, &one, &Tolerances::default()).unwrap();
        assert!(d.hard().is_empty(), "{}", d.render());

        // A systematic violation pattern on one side only: hard.
        let many = campaign("live", &[cell(&[("violations_claimed", "3")])]);
        let d = diff_reports(&sim, &many, &Tolerances::default()).unwrap();
        assert!(!d.hard().is_empty(), "{}", d.render());
    }

    #[test]
    fn bounds_and_grid_must_match_exactly() {
        let sim = campaign("sim", &[cell(&[])]);
        let bound = campaign("live", &[cell(&[("corrected_bound", "23")])]);
        let d = diff_reports(&sim, &bound, &Tolerances::default()).unwrap();
        assert_eq!(d.hard().len(), 1, "{}", d.render());

        let grid = campaign("live", &[cell(&[("loss", "0.05")])]);
        let d = diff_reports(&sim, &grid, &Tolerances::default()).unwrap();
        assert!(!d.hard().is_empty(), "{}", d.render());

        let fewer = campaign("live", &[]);
        let d = diff_reports(&sim, &fewer, &Tolerances::default()).unwrap();
        assert!(!d.hard().is_empty(), "{}", d.render());
    }

    #[test]
    fn monitor_fields_are_optional_and_gate_on_the_story() {
        // Pre-monitor artifacts (no monitor fields at all) diff clean
        // against themselves — covered by identical_reports_diff_clean —
        // and against a monitored report they diverge hard on the
        // campaign-level flag.
        let plain = campaign("sim", &[cell(&[])]);
        let monitored = campaign("live", &[cell(&[])])
            .replace("\"seeds\":10,", "\"seeds\":10,\"monitor\":true,");
        let d = diff_reports(&plain, &monitored, &Tolerances::default()).unwrap();
        assert!(
            d.hard().iter().any(|x| x.field == "monitor"),
            "{}",
            d.render()
        );

        // Same grid, monitored on both sides: R1 firing on one substrate
        // only is the protocol story — hard.
        let mon = |r1: &str, clean: &str, first: &str| {
            campaign(
                "sim",
                &[cell(&[]).replace(
                    "\"stale_admitted\":0",
                    &format!(
                        "\"stale_admitted\":0,\"monitor_runs\":30,\
                             \"monitor_clean\":{clean},\"monitor_r1\":{r1},\
                             \"monitor_r2\":0,\"monitor_r3\":0,\
                             \"monitor_first\":{first}"
                    ),
                )],
            )
        };
        let firing = mon("10", "20", "1017");
        let quiet = mon("0", "30", "null");
        let d = diff_reports(&firing, &quiet, &Tolerances::default()).unwrap();
        assert!(
            d.hard().iter().any(|x| x.field == "monitor_r1 (flag)"),
            "{}",
            d.render()
        );
        // Both firing, timestamps a few ticks apart: a note.
        let close = mon("10", "20", "1019");
        let d = diff_reports(&firing, &close, &Tolerances::default()).unwrap();
        assert!(d.hard().is_empty(), "{}", d.render());
        assert!(
            d.divergences.iter().any(|x| x.field == "monitor_first"),
            "{}",
            d.render()
        );
        // A wide gap in the earliest firing is still a note on lossy
        // cells (min over two loss realizations) but hard on lossless
        // ones, whose runs are deterministic.
        let far = mon("10", "20", "1100");
        let d = diff_reports(&firing, &far, &Tolerances::default()).unwrap();
        assert!(d.hard().is_empty(), "{}", d.render());
        let lossless = |s: &str| s.replace("\"loss\":0.02", "\"loss\":0");
        let d = diff_reports(&lossless(&firing), &lossless(&far), &Tolerances::default()).unwrap();
        assert!(
            d.hard().iter().any(|x| x.field == "monitor_first"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn missing_population_skips_delay_comparison() {
        // Left never detects, right always does: the flag flip is the
        // finding; detect_mean 0.0-vs-14.0 must not also fire.
        let sim = campaign(
            "sim",
            &[cell(&[
                ("detected", "0"),
                ("detect_mean", "0.000"),
                ("detect_max", "0"),
            ])],
        );
        let live = campaign("live", &[cell(&[])]);
        let d = diff_reports(&sim, &live, &Tolerances::default()).unwrap();
        assert!(d.divergences.iter().all(|x| x.field != "detect_mean"));
        assert!(
            d.divergences.iter().any(|x| x.field == "detected (flag)"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn the_checked_in_artifact_pair_passes_the_gate() {
        // Calibration contract: the shipped sim/live artifacts must diff
        // to notes only. (Paths are relative to the workspace root.)
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let sim = std::fs::read_to_string(format!("{root}/artifacts/campaign_gm98_sim.json"));
        let live = std::fs::read_to_string(format!("{root}/artifacts/campaign_gm98_live.json"));
        let (Ok(sim), Ok(live)) = (sim, live) else {
            return; // artifacts not present in this checkout
        };
        let d = diff_reports(&sim, &live, &Tolerances::default()).unwrap();
        assert!(
            d.hard().is_empty(),
            "checked-in artifacts must pass: {}",
            d.render()
        );
        assert!(
            !d.divergences.is_empty(),
            "the two substrates are known to sample differently"
        );
    }
}
