//! Running a fault plan on the discrete-event simulator.
//!
//! The plan's message-level faults become the world's
//! [`FaultHook`](hb_sim::FaultHook); its schedule-level faults (crash /
//! start / leave / revive) map onto the world's own injection API. Drift faults
//! are meaningless here — the simulator has a single global clock — and
//! are skipped (the live backend applies them; see [`crate::live`]).

use hb_core::events::{OwnedTap, SharedTap};
use hb_sim::metrics::Report;
use hb_sim::schema::RunSummary;
use hb_sim::world::{World, WorldConfig};

use crate::pipeline::FaultPipeline;
use crate::plan::{FaultPlan, FaultSpec};

/// Run `plan` on the simulator and produce the shared summary schema
/// (`source: "sim"`). Deterministic: the same plan (including its seed)
/// yields a byte-identical `to_json()`.
pub fn run_plan_sim(plan: &FaultPlan) -> RunSummary {
    RunSummary::from_report(&run_plan_sim_report(plan))
}

/// Like [`run_plan_sim`], but with a live event tap (e.g. a streaming
/// requirement monitor) attached to the world's sink. The tap sees every
/// event whether or not logging is enabled; the summary itself is
/// unchanged — callers read their verdicts out of the tap.
pub fn run_plan_sim_tapped(plan: &FaultPlan, tap: SharedTap) -> RunSummary {
    RunSummary::from_report(&run_report(plan, Some(TapKind::Shared(tap))))
}

/// Like [`run_plan_sim_tapped`], but the world's sink *owns* the tap —
/// the simulator is single-threaded, so events dispatch without any
/// mutex. The tap is handed back alongside the summary for the caller
/// to read its verdicts out of (e.g. via `MonitorSet::from_tap`).
pub fn run_plan_sim_owned_tap(plan: &FaultPlan, tap: OwnedTap) -> (RunSummary, OwnedTap) {
    let (report, mut taps) = run_report_taps(plan, Some(TapKind::Owned(tap)));
    let tap = taps.pop().expect("the attached owned tap comes back");
    (RunSummary::from_report(&report), tap)
}

/// Like [`run_plan_sim`], but hands back the full simulator [`Report`].
pub fn run_plan_sim_report(plan: &FaultPlan) -> Report {
    run_report(plan, None)
}

enum TapKind {
    Shared(SharedTap),
    Owned(OwnedTap),
}

fn run_report(plan: &FaultPlan, tap: Option<TapKind>) -> Report {
    run_report_taps(plan, tap).0
}

fn run_report_taps(plan: &FaultPlan, tap: Option<TapKind>) -> (Report, Vec<OwnedTap>) {
    let cfg = WorldConfig {
        variant: plan.proto.variant,
        params: plan.proto.params,
        fix: plan.proto.fix,
        n: plan.proto.n,
        loss_prob: 0.0, // the pipeline is the sole drop authority
        log_events: false,
    };
    let mut world = World::new(cfg, plan.seed);
    match tap {
        Some(TapKind::Shared(tap)) => world.attach_tap(tap),
        Some(TapKind::Owned(tap)) => world.attach_owned_tap(tap),
        None => {}
    }
    world.set_fault_hook(Box::new(FaultPipeline::new(plan)));
    for fault in &plan.faults {
        match *fault {
            FaultSpec::Crash { pid, at } => world.schedule_crash(pid, at),
            FaultSpec::Start { pid, at } => world.schedule_start(pid, at),
            FaultSpec::Leave { pid, at } => world.schedule_leave(pid, at),
            FaultSpec::Revive { pid, at } => world.schedule_revive(pid, at),
            _ => {}
        }
    }
    world.run_until(plan.proto.duration);
    let taps = world.take_owned_taps();
    (world.into_report(), taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Link, ProtoSpec, Window};
    use hb_core::{FixLevel, Params, Status, Variant};
    use hb_sim::LossModel;

    fn proto(fix: FixLevel) -> ProtoSpec {
        ProtoSpec {
            variant: Variant::Binary,
            params: Params::new(2, 8).unwrap(),
            fix,
            n: 1,
            duration: 2_000,
            membership: false,
        }
    }

    #[test]
    fn faultless_plan_stays_alive() {
        let plan = FaultPlan::new("quiet", 1, proto(FixLevel::Full));
        let s = run_plan_sim(&plan);
        assert_eq!(s.source, "sim");
        assert_eq!(s.false_inactivations, 0);
        assert_eq!(s.duration, 2_000);
        assert!(s.messages_lost == 0 && s.messages_delivered > 0);
    }

    #[test]
    fn crash_is_detected_through_burst_loss() {
        // Seed-pinned: bursty loss can starve the watchdogs before the
        // scheduled crash (2 correlated beat losses cover the whole
        // 2·tmax bound); this seed keeps everyone alive until tick 500.
        let plan = FaultPlan::new("crash", 1, proto(FixLevel::Full))
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: crate::pipeline::burst_model(0.05, 2.0),
            })
            .with(FaultSpec::Crash { pid: 1, at: 500 });
        let s = run_plan_sim(&plan);
        assert_eq!(s.crashes, vec![(1, 500)]);
        let d = s.detection_delay.expect("crash must be detected");
        // Loss only silences the channel further, so detection stays
        // within the corrected bound.
        let bound = u64::from(
            Params::new(2, 8)
                .unwrap()
                .p0_bound_corrected(Variant::Binary),
        );
        assert!(d <= bound, "delay {d} > bound {bound}");
    }

    #[test]
    fn long_partition_forces_false_suspicion() {
        // Cut the coordinator off for longer than the halving chain: both
        // sides starve and inactivate with no crash injected.
        let plan =
            FaultPlan::new("partition", 2, proto(FixLevel::Full)).with(FaultSpec::Partition {
                window: Window::between(200, 400),
                groups: vec![vec![0], vec![1]],
            });
        let s = run_plan_sim(&plan);
        assert!(s.false_inactivations >= 1, "{s:?}");
        assert!(s.final_status.iter().all(|st| *st == Status::NvInactive));
    }

    #[test]
    fn short_partition_is_survived_by_the_fixed_protocol() {
        let plan = FaultPlan::new("blip", 3, proto(FixLevel::Full)).with(FaultSpec::Partition {
            window: Window::between(200, 208),
            groups: vec![vec![0], vec![1]],
        });
        let s = run_plan_sim(&plan);
        assert_eq!(s.false_inactivations, 0, "{s:?}");
        assert!(s.messages_lost > 0, "the partition must have bitten");
    }

    #[test]
    fn duplication_inflates_delivery_counts() {
        let plan = FaultPlan::new("dup", 4, proto(FixLevel::Full)).with(FaultSpec::Duplicate {
            window: Window::always(),
            link: Link::any(),
            p: 1.0,
        });
        let s = run_plan_sim(&plan);
        assert!(
            s.messages_delivered > s.messages_sent,
            "every message doubled: {} delivered vs {} sent",
            s.messages_delivered,
            s.messages_sent
        );
        assert_eq!(s.false_inactivations, 0, "duplicates are harmless");
    }

    #[test]
    fn replay_is_byte_identical() {
        let plan = FaultPlan::new("replay", 11, proto(FixLevel::ReceivePriority))
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: LossModel::Bernoulli(0.2),
            })
            .with(FaultSpec::Reorder {
                window: Window::always(),
                link: Link::any(),
                p: 0.3,
                max_extra: 2,
            })
            .with(FaultSpec::Crash { pid: 1, at: 700 });
        let a = run_plan_sim(&plan).to_json();
        let b = run_plan_sim(&plan).to_json();
        assert_eq!(a, b);
        let mut other = plan.clone();
        other.seed = 12;
        assert_ne!(run_plan_sim(&other).to_json(), a);
    }
}
