//! `hb-chaos` — deterministic fault injection and chaos campaigns for
//! the accelerated heartbeat protocols.
//!
//! The simulator (`hb-sim`) and the live runtime (`hb-net`) both drive
//! the same `hb-core` state machines; this crate gives them one shared
//! adversary:
//!
//! * [`plan`] — a declarative, seed-deterministic [`FaultPlan`]:
//!   partitions (symmetric and one-way), Bernoulli / Gilbert–Elliott
//!   loss, duplication, bounded reordering, delay spikes, per-node clock
//!   drift, and crash / late-start / leave schedules — serializable
//!   to/from a small JSON spec ([`json`] is the hand-rolled reader; the
//!   offline build has no serde);
//! * [`pipeline`] — [`FaultPipeline`], the compiled plan: one stateful
//!   engine owning all fault randomness, installed as the simulator's
//!   [`FaultHook`](hb_sim::FaultHook) and consulted by the live
//!   transport decorator;
//! * [`sim`] / [`live`] — the two injection backends.
//!   [`run_plan_sim`](sim::run_plan_sim) wraps `hb_sim::World`;
//!   [`run_plan_live`](live::run_plan_live) wraps a loopback
//!   [`ChaosCluster`](live::ChaosCluster) of `hb-net` node runtimes
//!   whose endpoints are decorated by
//!   [`ChaosTransport`](live::ChaosTransport) (which equally wraps UDP).
//!   The same plan runs on both, producing the shared
//!   [`RunSummary`](hb_sim::schema::RunSummary) schema, byte-identical
//!   under replay;
//! * [`campaign`] — a parallel campaign runner sweeping
//!   `fix × loss × burst × drift × partition` grids across worker
//!   threads into a deterministic JSON report;
//! * [`diff`] — the sim-vs-live campaign differ: cell-by-cell
//!   comparison with calibrated tolerances and qualitative divergence
//!   flags (the CI gate for the checked-in artifact pair).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod json;
pub mod live;
pub mod member;
pub mod pipeline;
pub mod plan;
pub mod rejoin;
pub mod sim;

use hb_core::events::SharedTap;
use hb_monitor::MonitorSet;
use hb_sim::schema::RunSummary;

pub use campaign::{run_campaign, CampaignReport, CampaignSpec, Cell, CellStats, RunKind};
pub use diff::{diff_reports, DiffReport, Divergence, Severity, Tolerances};
pub use live::{run_plan_live, ChaosCluster, ChaosNet, ChaosTransport};
pub use member::{
    failover_plan, member_config, run_failover_campaign, run_plan_member,
    run_plan_member_monitored, FailoverCell, FailoverReport, MemberRun, SharedPipeline,
};
pub use pipeline::{burst_model, FaultPipeline, PipelineStats};
pub use plan::{FaultPlan, FaultSpec, Link, PlanError, ProtoSpec, Window};
pub use rejoin::{rejoin_demo_plan, run_rejoin_demo, RejoinDemo};
pub use sim::{run_plan_sim, run_plan_sim_tapped};

/// Which substrate executes a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator (`hb_sim::World`).
    Sim,
    /// The live loopback runtime under virtual time
    /// ([`live::ChaosCluster`]).
    Live,
}

impl Backend {
    /// Stable lowercase name (report fields, CLI arguments).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Live => "live",
        }
    }

    /// Parse a backend name.
    pub fn from_name(s: &str) -> Option<Backend> {
        match s {
            "sim" => Some(Backend::Sim),
            "live" => Some(Backend::Live),
            _ => None,
        }
    }
}

/// Run one fault plan on the chosen backend. Membership plans
/// ([`ProtoSpec::membership`]) execute on the `hb-member` group layer;
/// everything else runs the plain detector runtimes.
pub fn run_plan(plan: &FaultPlan, backend: Backend) -> RunSummary {
    if plan.proto.membership {
        return member::run_plan_member(plan, backend).summary;
    }
    match backend {
        Backend::Sim => sim::run_plan_sim(plan),
        Backend::Live => live::run_plan_live(plan),
    }
}

/// Run one fault plan on the chosen backend with a streaming
/// [`MonitorSet`] attached, and record its verdicts in the summary's
/// `monitor` field.
///
/// The monitor taps the run's event stream live (every node sink on the
/// live backend, the world sink on the simulator, plus the fault
/// pipeline's synthetic `lose` events), is closed at the run's actual
/// end tick, and its first-violation verdicts ride along in the shared
/// schema — so campaign cells, the rejoin demo and CI gates can all ask
/// the same question: "did any requirement monitor fire?".
pub fn run_plan_monitored(plan: &FaultPlan, backend: Backend) -> RunSummary {
    if plan.proto.membership {
        return member::run_plan_member_monitored(plan, backend).summary;
    }
    // The simulator is single-threaded, so the monitor rides as an
    // *owned* tap — no mutex on the per-event path. The live backend
    // merges event streams from many node threads and keeps the shared,
    // locked tap.
    match backend {
        Backend::Sim => {
            let monitor = MonitorSet::new(
                plan.proto.variant,
                plan.proto.params,
                plan.proto.fix,
                plan.proto.n,
            );
            let (mut summary, tap) = sim::run_plan_sim_owned_tap(plan, Box::new(monitor));
            let mut mon = MonitorSet::from_tap(tap).expect("the tap is the monitor");
            mon.finish(summary.duration);
            summary.monitor = Some(mon.verdicts());
            summary
        }
        Backend::Live => {
            let monitor = MonitorSet::shared(
                plan.proto.variant,
                plan.proto.params,
                plan.proto.fix,
                plan.proto.n,
            );
            let tap: SharedTap = monitor.clone();
            let mut cluster = live::ChaosCluster::new(plan.clone());
            cluster.attach_monitor(tap);
            cluster.run_until(plan.proto.duration);
            let mut summary = cluster.into_summary();
            let mut mon = monitor.lock().expect("monitor poisoned");
            mon.finish(summary.duration);
            summary.monitor = Some(mon.verdicts());
            summary
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Sim, Backend::Live] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("cloud"), None);
    }

    #[test]
    fn one_plan_runs_on_both_backends() {
        use hb_core::{FixLevel, Params, Variant};
        let plan = FaultPlan::new(
            "both",
            3,
            ProtoSpec {
                variant: Variant::Binary,
                params: Params::new(2, 8).unwrap(),
                fix: FixLevel::Full,
                n: 1,
                duration: 500,
                membership: false,
            },
        )
        .with(FaultSpec::Crash { pid: 1, at: 200 });
        let sim = run_plan(&plan, Backend::Sim);
        let live = run_plan(&plan, Backend::Live);
        assert_eq!(sim.source, "sim");
        assert_eq!(live.source, "live");
        assert!(sim.detection_delay.is_some() && live.detection_delay.is_some());
    }
}
