//! The protocol corrections proposed after model checking (Atif & Mousavi
//! §6).
//!
//! Model checking the original protocols finds every natural requirement
//! violated somewhere in the parameter space (the paper's Tables 1 and 2).
//! Two orthogonal corrections repair them:
//!
//! 1. **Receive priority** (§6.1): when a heartbeat delivery and a timeout
//!    are enabled at the same instant, the delivery must be processed
//!    first. Without this, a process can inactivate itself at the exact
//!    moment an on-time heartbeat arrives (the paper's Figures 11/12).
//! 2. **Corrected time bounds** (§6.2): the coordinator's detection bound
//!    claimed by the original paper (`2·tmax`) is wrong when
//!    `2·tmin ≤ tmax`, and the participants' `3·tmax − tmin` timeout is
//!    wrong (too short) for the expanding/dynamic join phase and
//!    needlessly loose for binary/static. See
//!    [`Params`](crate::Params) for the corrected formulas.

use std::fmt;

/// Which of the §6 corrections are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FixLevel {
    /// The protocols exactly as published in 1998/2004.
    Original,
    /// Only the §6.1 receive-over-timeout priority.
    ReceivePriority,
    /// Only the §6.2 corrected time bounds.
    CorrectedBounds,
    /// Both corrections — the fully repaired protocols, which satisfy all
    /// requirements on every data set.
    Full,
}

impl FixLevel {
    /// All fix levels, in increasing order of repair.
    pub const ALL: [FixLevel; 4] = [
        FixLevel::Original,
        FixLevel::ReceivePriority,
        FixLevel::CorrectedBounds,
        FixLevel::Full,
    ];

    /// Whether message deliveries take priority over simultaneous
    /// timeouts.
    pub fn receive_priority(self) -> bool {
        matches!(self, FixLevel::ReceivePriority | FixLevel::Full)
    }

    /// Whether the corrected inactivation bounds are used.
    pub fn corrected_bounds(self) -> bool {
        matches!(self, FixLevel::CorrectedBounds | FixLevel::Full)
    }

    /// Whether the §7 epoch-tagged rejoin protocol is active in the
    /// runtimes: the coordinator filters beats from superseded
    /// incarnations behind a per-participant epoch bar, and participants
    /// re-enter the join phase with a fresh epoch after a restart.
    ///
    /// Rejoin presupposes *both* §6 corrections (its watchdog-bound
    /// analysis assumes receive priority and the corrected bounds), so it
    /// rides on [`FixLevel::Full`] only; every other level keeps the
    /// naive behaviour where stale beats are admitted as if fresh.
    pub fn epoch_rejoin(self) -> bool {
        matches!(self, FixLevel::Full)
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FixLevel::Original => "original",
            FixLevel::ReceivePriority => "receive-priority",
            FixLevel::CorrectedBounds => "corrected-bounds",
            FixLevel::Full => "full-fix",
        }
    }
}

impl fmt::Display for FixLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_per_level() {
        assert!(!FixLevel::Original.receive_priority());
        assert!(!FixLevel::Original.corrected_bounds());
        assert!(FixLevel::ReceivePriority.receive_priority());
        assert!(!FixLevel::ReceivePriority.corrected_bounds());
        assert!(!FixLevel::CorrectedBounds.receive_priority());
        assert!(FixLevel::CorrectedBounds.corrected_bounds());
        assert!(FixLevel::Full.receive_priority());
        assert!(FixLevel::Full.corrected_bounds());
        // §7 rejoin requires both §6 corrections.
        for f in FixLevel::ALL {
            assert_eq!(
                f.epoch_rejoin(),
                f.receive_priority() && f.corrected_bounds(),
                "{f}"
            );
        }
    }

    #[test]
    fn all_levels_distinct_names() {
        let names: std::collections::HashSet<_> = FixLevel::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
