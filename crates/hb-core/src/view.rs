//! Membership views: a monotone view number layered on §7 epochs.
//!
//! A [`View`] names the group at an instant: which processes are members,
//! which one coordinates, and the coordinator's per-member min-epoch bars
//! (so a successor inherits the §7 stale-beat filter instead of starting
//! blind). Views are totally ordered by [`View::supersedes`]: a higher
//! view number wins, and a concurrent tie (two successors racing after a
//! coordinator death) is broken towards the **lower** coordinator pid —
//! the same deterministic successor rule that elects it. A process only
//! ever replaces its view with a superseding one, so two partitions
//! cannot both believe they "won" the same view number.
//!
//! The member list is a fixed-capacity sorted array ([`MAX_VIEW_MEMBERS`])
//! rather than a `Vec`, keeping `View` — and the wire frames that carry
//! it — `Copy` and allocation-free on the hot path.

use crate::msg::Pid;

/// Upper bound on the number of members a view (and the wire frame that
/// carries it) can name. `11 + 3 * 16 = 59` bytes keeps a view frame
/// under the 64-byte frame cap.
pub const MAX_VIEW_MEMBERS: usize = 16;

/// One membership view: the group composition at a point in logical time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct View {
    /// Monotone view number; bumped by every install.
    pub view_no: u32,
    /// The coordinating member.
    pub coordinator: Pid,
    len: u8,
    members: [u16; MAX_VIEW_MEMBERS],
    epoch_bars: [u8; MAX_VIEW_MEMBERS],
}

impl View {
    /// Build a view from `(pid, epoch_bar)` entries.
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`MAX_VIEW_MEMBERS`] entries, if the
    /// pids are not strictly ascending (the canonical order), if a pid
    /// exceeds the `u16` wire field, or if the coordinator is not a
    /// member.
    pub fn new(view_no: u32, coordinator: Pid, entries: &[(Pid, u8)]) -> Self {
        assert!(
            entries.len() <= MAX_VIEW_MEMBERS,
            "a view holds at most {MAX_VIEW_MEMBERS} members"
        );
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "view members must be strictly ascending"
        );
        let mut members = [0u16; MAX_VIEW_MEMBERS];
        let mut epoch_bars = [0u8; MAX_VIEW_MEMBERS];
        for (i, &(pid, bar)) in entries.iter().enumerate() {
            members[i] = u16::try_from(pid).expect("pid must fit the u16 wire field");
            epoch_bars[i] = bar;
        }
        let v = View {
            view_no,
            coordinator,
            len: entries.len() as u8,
            members,
            epoch_bars,
        };
        assert!(v.contains(coordinator), "coordinator must be a member");
        v
    }

    /// The genesis view: processes `0..=n` with pid 0 coordinating and
    /// all epoch bars at zero — exactly the static configuration the
    /// plain protocol assumes.
    pub fn genesis(n: usize) -> Self {
        let entries: Vec<(Pid, u8)> = (0..=n).map(|p| (p, 0)).collect();
        View::new(0, 0, &entries)
    }

    /// Number of members.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// The member pids, ascending.
    pub fn members(&self) -> impl Iterator<Item = Pid> + '_ {
        self.members[..self.len()].iter().map(|&p| Pid::from(p))
    }

    /// `(pid, epoch_bar)` entries, ascending by pid.
    pub fn entries(&self) -> impl Iterator<Item = (Pid, u8)> + '_ {
        (0..self.len()).map(|i| (Pid::from(self.members[i]), self.epoch_bars[i]))
    }

    /// Whether `pid` is a member.
    pub fn contains(&self, pid: Pid) -> bool {
        self.members().any(|p| p == pid)
    }

    /// The epoch bar recorded for `pid`, if a member.
    pub fn bar_of(&self, pid: Pid) -> Option<u8> {
        self.entries().find(|&(p, _)| p == pid).map(|(_, b)| b)
    }

    /// The deterministic successor rule: the lowest-pid member other
    /// than the current coordinator, if any.
    pub fn successor(&self) -> Option<Pid> {
        self.members().find(|&p| p != self.coordinator)
    }

    /// A member's rank in the succession order (0 = first successor).
    pub fn succession_rank(&self, pid: Pid) -> Option<usize> {
        self.members()
            .filter(|&p| p != self.coordinator)
            .position(|p| p == pid)
    }

    /// Total order on views: a higher view number supersedes; a tie goes
    /// to the lower coordinator pid (the successor rule's own preference),
    /// so two racing installs of the same number resolve identically at
    /// every process.
    pub fn supersedes(&self, other: &View) -> bool {
        self.view_no > other.view_no
            || (self.view_no == other.view_no && self.coordinator < other.coordinator)
    }

    /// Derive the next view with `dead` removed and `coordinator`
    /// re-seated (the failover install). Epoch bars carry over.
    ///
    /// # Panics
    ///
    /// Panics if the new coordinator is not a surviving member.
    pub fn evict(&self, dead: Pid, coordinator: Pid) -> View {
        let entries: Vec<(Pid, u8)> = self.entries().filter(|&(p, _)| p != dead).collect();
        View::new(self.view_no + 1, coordinator, &entries)
    }

    /// Derive the next view with `joiner` admitted at `bar` (the join
    /// install). Re-admitting an existing member just raises its bar.
    pub fn admit(&self, joiner: Pid, bar: u8) -> View {
        let mut entries: Vec<(Pid, u8)> = self.entries().filter(|&(p, _)| p != joiner).collect();
        let at = entries.partition_point(|&(p, _)| p < joiner);
        entries.insert(at, (joiner, bar));
        View::new(self.view_no + 1, self.coordinator, &entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_the_static_configuration() {
        let v = View::genesis(3);
        assert_eq!(v.view_no, 0);
        assert_eq!(v.coordinator, 0);
        assert_eq!(v.members().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(v.entries().all(|(_, b)| b == 0));
    }

    #[test]
    fn supersedes_is_a_total_order_with_low_pid_tiebreak() {
        let a = View::new(2, 1, &[(1, 0), (2, 0)]);
        let b = View::new(2, 2, &[(2, 0), (3, 0)]);
        let c = View::new(3, 2, &[(2, 0), (3, 0)]);
        assert!(a.supersedes(&b), "same number: lower coordinator wins");
        assert!(!b.supersedes(&a));
        assert!(c.supersedes(&a), "higher number beats lower pid");
        assert!(!a.supersedes(&a), "irreflexive");
    }

    #[test]
    fn successor_rule_skips_the_coordinator() {
        let v = View::genesis(3);
        assert_eq!(v.successor(), Some(1));
        assert_eq!(v.succession_rank(1), Some(0));
        assert_eq!(v.succession_rank(3), Some(2));
        assert_eq!(v.succession_rank(0), None, "the coordinator has no rank");
        let failed_over = v.evict(0, 1);
        assert_eq!(failed_over.view_no, 1);
        assert_eq!(failed_over.coordinator, 1);
        assert_eq!(failed_over.members().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn evict_preserves_epoch_bars() {
        let v = View::new(0, 0, &[(0, 0), (1, 3), (2, 5)]);
        let next = v.evict(0, 1);
        assert_eq!(next.bar_of(1), Some(3));
        assert_eq!(next.bar_of(2), Some(5));
        assert_eq!(next.bar_of(0), None);
    }

    #[test]
    fn admit_inserts_sorted_and_bumps_the_number() {
        let v = View::new(1, 1, &[(1, 0), (3, 0)]);
        let joined = v.admit(2, 4);
        assert_eq!(joined.view_no, 2);
        assert_eq!(joined.members().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(joined.bar_of(2), Some(4));
        // Re-admitting a member raises its bar without duplicating it.
        let readmit = joined.admit(3, 7);
        assert_eq!(readmit.members().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(readmit.bar_of(3), Some(7));
    }

    #[test]
    #[should_panic(expected = "coordinator must be a member")]
    fn coordinator_must_be_a_member() {
        View::new(0, 9, &[(0, 0), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn members_must_be_sorted_and_unique() {
        View::new(0, 1, &[(1, 0), (1, 0)]);
    }
}
