//! Protocol event logs and ASCII sequence charts.
//!
//! Both the simulator and the verification layer record what happened as a
//! sequence of [`Event`]s; [`EventLog::render_chart`] draws them as a
//! message sequence chart in the style of the paper's counter-example
//! figures (Figures 10–13).

use std::fmt;

use crate::msg::{Heartbeat, Pid};

/// One observable protocol event, stamped with the (discrete) time at
/// which it occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `from` put a heartbeat on the channel towards `to`.
    Send {
        /// Time of occurrence.
        at: u64,
        /// Sending process.
        from: Pid,
        /// Destination process.
        to: Pid,
        /// The message.
        hb: Heartbeat,
    },
    /// The channel delivered a heartbeat to `to`.
    Deliver {
        /// Time of occurrence.
        at: u64,
        /// Original sender.
        from: Pid,
        /// Receiving process.
        to: Pid,
        /// The message.
        hb: Heartbeat,
    },
    /// The channel lost a heartbeat addressed to `to`.
    Lose {
        /// Time of occurrence.
        at: u64,
        /// Original sender.
        from: Pid,
        /// Intended destination.
        to: Pid,
    },
    /// A round timeout fired at `pid`.
    Timeout {
        /// Time of occurrence.
        at: u64,
        /// Process whose timer fired.
        pid: Pid,
    },
    /// `pid` crashed (voluntary inactivation).
    Crash {
        /// Time of occurrence.
        at: u64,
        /// Crashing process.
        pid: Pid,
    },
    /// `pid` was inactivated non-voluntarily by the protocol.
    NvInactivate {
        /// Time of occurrence.
        at: u64,
        /// Inactivated process.
        pid: Pid,
    },
    /// `pid` left the protocol (dynamic variant).
    Leave {
        /// Time of occurrence.
        at: u64,
        /// Leaving process.
        pid: Pid,
    },
    /// `pid` restarted after a crash with a fresh epoch (§7 rejoin).
    Revive {
        /// Time of occurrence.
        at: u64,
        /// Revived process.
        pid: Pid,
    },
    /// `pid` installed a membership view (hb-member layer).
    ViewChange {
        /// Time of occurrence.
        at: u64,
        /// Process installing the view.
        pid: Pid,
        /// Monotone view number.
        view_no: u32,
        /// Coordinator of the installed view.
        coordinator: Pid,
    },
    /// Coordinator `from` shipped its current view to `to` (state transfer).
    StateTransfer {
        /// Time of occurrence.
        at: u64,
        /// The replying coordinator.
        from: Pid,
        /// The joiner (or demoted ex-coordinator) receiving the view.
        to: Pid,
        /// View number of the transferred view.
        view_no: u32,
    },
}

impl Event {
    /// The timestamp of the event.
    pub fn at(&self) -> u64 {
        match *self {
            Event::Send { at, .. }
            | Event::Deliver { at, .. }
            | Event::Lose { at, .. }
            | Event::Timeout { at, .. }
            | Event::Crash { at, .. }
            | Event::NvInactivate { at, .. }
            | Event::Leave { at, .. }
            | Event::Revive { at, .. }
            | Event::ViewChange { at, .. }
            | Event::StateTransfer { at, .. } => at,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Send { at, from, to, hb } => {
                write!(f, "t={at:>4}  p[{from}] sends {hb} to p[{to}]")
            }
            Event::Deliver { at, from, to, hb } => {
                write!(f, "t={at:>4}  {hb} from p[{from}] delivered to p[{to}]")
            }
            Event::Lose { at, from, to } => {
                write!(f, "t={at:>4}  channel loses beat p[{from}] -> p[{to}]")
            }
            Event::Timeout { at, pid } => write!(f, "t={at:>4}  timeout at p[{pid}]"),
            Event::Crash { at, pid } => write!(f, "t={at:>4}  p[{pid}] crashes (voluntary)"),
            Event::NvInactivate { at, pid } => {
                write!(f, "t={at:>4}  p[{pid}] inactivated NON-VOLUNTARILY")
            }
            Event::Leave { at, pid } => write!(f, "t={at:>4}  p[{pid}] leaves the protocol"),
            Event::Revive { at, pid } => {
                write!(f, "t={at:>4}  p[{pid}] revives with a fresh epoch")
            }
            Event::ViewChange {
                at,
                pid,
                view_no,
                coordinator,
            } => {
                write!(
                    f,
                    "t={at:>4}  p[{pid}] installs view {view_no} (coordinator p[{coordinator}])"
                )
            }
            Event::StateTransfer {
                at,
                from,
                to,
                view_no,
            } => {
                write!(
                    f,
                    "t={at:>4}  p[{from}] transfers view {view_no} state to p[{to}]"
                )
            }
        }
    }
}

/// An append-only log of protocol events.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All recorded events, in order of occurrence.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given process (sender for sends, receiver for
    /// deliveries/losses).
    pub fn of_process(&self, pid: Pid) -> Vec<Event> {
        self.events
            .iter()
            .copied()
            .filter(|e| match *e {
                Event::Send { from, .. } => from == pid,
                Event::Deliver { to, .. } | Event::Lose { to, .. } => to == pid,
                Event::Timeout { pid: p, .. }
                | Event::Crash { pid: p, .. }
                | Event::NvInactivate { pid: p, .. }
                | Event::Leave { pid: p, .. }
                | Event::Revive { pid: p, .. }
                | Event::ViewChange { pid: p, .. } => p == pid,
                Event::StateTransfer { to, .. } => to == pid,
            })
            .collect()
    }

    /// Render a message-sequence chart with one column per process
    /// (`0..=n`), one row per event, in the style of the paper's
    /// counter-example figures.
    pub fn render_chart(&self, n: usize) -> String {
        const COL: usize = 14;
        let mut out = String::new();
        // header
        out.push_str("  time  ");
        for p in 0..=n {
            out.push_str(&format!("{:^width$}", format!("p[{p}]"), width = COL));
        }
        out.push('\n');
        out.push_str(&"-".repeat(8 + COL * (n + 1)));
        out.push('\n');
        for e in &self.events {
            let mut cells = vec![" ".repeat(COL); n + 1];
            let mark = |cells: &mut Vec<String>, pid: usize, text: &str| {
                if pid <= n {
                    cells[pid] = format!("{:^width$}", text, width = COL);
                }
            };
            match *e {
                Event::Send { from, to, hb, .. } => {
                    let arrow = if from < to { "beat ->" } else { "<- beat" };
                    let label = if hb.flag {
                        arrow.to_string()
                    } else {
                        format!("{arrow} (F)")
                    };
                    mark(&mut cells, from, &label);
                }
                Event::Deliver { to, hb, .. } => {
                    let label = if hb.flag { "recv beat" } else { "recv beat(F)" };
                    mark(&mut cells, to, label);
                }
                Event::Lose { to, .. } => mark(&mut cells, to, "~~lost~~"),
                Event::Timeout { pid, .. } => mark(&mut cells, pid, "timeout"),
                Event::Crash { pid, .. } => mark(&mut cells, pid, "CRASH"),
                Event::NvInactivate { pid, .. } => mark(&mut cells, pid, "NV-INACTIVE"),
                Event::Leave { pid, .. } => mark(&mut cells, pid, "leave"),
                Event::Revive { pid, .. } => mark(&mut cells, pid, "REVIVE"),
                Event::ViewChange { pid, view_no, .. } => {
                    mark(&mut cells, pid, &format!("VIEW {view_no}"))
                }
                Event::StateTransfer { to, .. } => mark(&mut cells, to, "xfer view"),
            }
            out.push_str(&format!("  {:>4}  ", e.at()));
            for c in cells {
                out.push_str(&c);
            }
            // trim trailing spaces
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromIterator<Event> for EventLog {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        EventLog {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for EventLog {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.push(Event::Timeout { at: 10, pid: 0 });
        log.push(Event::Send {
            at: 10,
            from: 0,
            to: 1,
            hb: Heartbeat::plain(),
        });
        log.push(Event::Deliver {
            at: 12,
            from: 0,
            to: 1,
            hb: Heartbeat::plain(),
        });
        log.push(Event::Send {
            at: 12,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        });
        log.push(Event::Crash { at: 12, pid: 1 });
        log.push(Event::NvInactivate { at: 38, pid: 0 });
        log
    }

    #[test]
    fn log_accumulates_in_order() {
        let log = sample_log();
        assert_eq!(log.len(), 6);
        assert!(!log.is_empty());
        assert_eq!(log.events()[0].at(), 10);
        assert_eq!(log.events().last().unwrap().at(), 38);
    }

    #[test]
    fn of_process_filters() {
        let log = sample_log();
        let p1 = log.of_process(1);
        assert_eq!(p1.len(), 3); // deliver to 1, send from 1, crash of 1
        let p0 = log.of_process(0);
        assert_eq!(p0.len(), 3); // timeout, send from 0, nv-inactivate
    }

    #[test]
    fn chart_has_header_and_rows() {
        let log = sample_log();
        let chart = log.render_chart(1);
        assert!(chart.contains("p[0]"));
        assert!(chart.contains("p[1]"));
        assert!(chart.contains("CRASH"));
        assert!(chart.contains("NV-INACTIVE"));
        assert_eq!(chart.lines().count(), 2 + log.len());
    }

    #[test]
    fn display_lists_all_events() {
        let log = sample_log();
        let text = log.to_string();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("p[1] crashes"));
    }

    #[test]
    fn from_iterator_roundtrip() {
        let log = sample_log();
        let rebuilt: EventLog = log.events().iter().copied().collect();
        assert_eq!(rebuilt.len(), log.len());
    }

    #[test]
    fn revive_renders_in_chart_and_listing() {
        let mut log = EventLog::new();
        log.push(Event::Crash { at: 4, pid: 1 });
        log.push(Event::Revive { at: 9, pid: 1 });
        assert_eq!(log.of_process(1).len(), 2);
        let chart = log.render_chart(1);
        assert!(chart.contains("REVIVE"));
        assert!(log.to_string().contains("revives with a fresh epoch"));
    }

    #[test]
    fn view_change_and_state_transfer_render() {
        let mut log = EventLog::new();
        log.push(Event::ViewChange {
            at: 40,
            pid: 1,
            view_no: 1,
            coordinator: 1,
        });
        log.push(Event::StateTransfer {
            at: 44,
            from: 1,
            to: 0,
            view_no: 1,
        });
        assert_eq!(log.of_process(1).len(), 1);
        assert_eq!(log.of_process(0).len(), 1); // transfer filed under the receiver
        let chart = log.render_chart(1);
        assert!(chart.contains("VIEW 1"));
        assert!(chart.contains("xfer view"));
        let text = log.to_string();
        assert!(text.contains("installs view 1 (coordinator p[1])"));
        assert!(text.contains("transfers view 1 state to p[0]"));
    }

    #[test]
    fn leave_and_lose_render() {
        let mut log = EventLog::new();
        log.push(Event::Lose {
            at: 3,
            from: 0,
            to: 1,
        });
        log.push(Event::Leave { at: 5, pid: 1 });
        let chart = log.render_chart(1);
        assert!(chart.contains("~~lost~~"));
        assert!(chart.contains("leave"));
        assert!(log.to_string().contains("channel loses"));
    }
}
