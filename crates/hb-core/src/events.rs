//! Shared event emission: one JSON-lines schema, one sink, one tap.
//!
//! Both substrates — the `hb-sim` discrete-event world and the `hb-net`
//! live node runtime — drive the same state machines, so they emit the
//! same [`Event`]s in the same flat JSON schema. This module is the single
//! home of that schema: [`event_json`] renders a record, [`parse_event_json`]
//! reads one back (for log tailing), [`EventSink`] routes events to an
//! in-memory log, a JSON-lines writer, and any number of attached
//! [`EventTap`]s (e.g. a streaming requirement monitor). No JSON dependency
//! is available in this environment; the records are tiny and flat, so they
//! are emitted and parsed by hand.

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::msg::Heartbeat;
use crate::trace::{Event, EventLog};

/// One protocol event as a single-line JSON object (no trailing newline).
///
/// Every record carries `t` (discrete time) and `ev` (the event kind);
/// the remaining fields depend on the kind:
///
/// ```text
/// {"t":10,"ev":"send","from":0,"to":1,"flag":true}
/// {"t":12,"ev":"deliver","from":0,"to":1,"flag":true}
/// {"t":12,"ev":"lose","from":0,"to":1}
/// {"t":10,"ev":"timeout","pid":0}
/// {"t":12,"ev":"crash","pid":1}
/// {"t":38,"ev":"nv_inactivate","pid":0}
/// {"t":600,"ev":"leave","pid":1}
/// {"t":700,"ev":"revive","pid":1}
/// {"t":710,"ev":"view_change","pid":1,"view":2,"coord":1}
/// {"t":715,"ev":"state_transfer","from":1,"to":0,"view":2}
/// ```
///
/// `send`/`deliver` records also carry `"epoch"` when the heartbeat is
/// from a restarted incarnation (epoch > 0), keeping pre-rejoin logs
/// byte-stable.
pub fn event_json(e: &Event) -> String {
    let epoch_field = |hb: Heartbeat| {
        if hb.epoch > 0 {
            format!(",\"epoch\":{}", hb.epoch)
        } else {
            String::new()
        }
    };
    match *e {
        Event::Send { at, from, to, hb } => {
            format!(
                "{{\"t\":{at},\"ev\":\"send\",\"from\":{from},\"to\":{to},\"flag\":{}{}}}",
                hb.flag,
                epoch_field(hb)
            )
        }
        Event::Deliver { at, from, to, hb } => {
            format!(
                "{{\"t\":{at},\"ev\":\"deliver\",\"from\":{from},\"to\":{to},\"flag\":{}{}}}",
                hb.flag,
                epoch_field(hb)
            )
        }
        Event::Lose { at, from, to } => {
            format!("{{\"t\":{at},\"ev\":\"lose\",\"from\":{from},\"to\":{to}}}")
        }
        Event::Timeout { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"timeout\",\"pid\":{pid}}}")
        }
        Event::Crash { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"crash\",\"pid\":{pid}}}")
        }
        Event::NvInactivate { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"nv_inactivate\",\"pid\":{pid}}}")
        }
        Event::Leave { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"leave\",\"pid\":{pid}}}")
        }
        Event::Revive { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"revive\",\"pid\":{pid}}}")
        }
        Event::ViewChange {
            at,
            pid,
            view_no,
            coordinator,
        } => {
            format!(
                "{{\"t\":{at},\"ev\":\"view_change\",\"pid\":{pid},\"view\":{view_no},\"coord\":{coordinator}}}"
            )
        }
        Event::StateTransfer {
            at,
            from,
            to,
            view_no,
        } => {
            format!("{{\"t\":{at},\"ev\":\"state_transfer\",\"from\":{from},\"to\":{to},\"view\":{view_no}}}")
        }
    }
}

/// Extract the raw text of `"key":<value>` from a flat one-line JSON
/// object. Good enough for the schema above: values never contain `,`
/// or `}`.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(&rest[..end])
}

/// Parse one line in the [`event_json`] schema back into an [`Event`].
///
/// Returns `None` on anything malformed — callers tailing a log decide
/// whether to skip or abort. Round-trips every record `event_json` emits.
pub fn parse_event_json(line: &str) -> Option<Event> {
    let line = line.trim();
    let at: u64 = raw_field(line, "t")?.parse().ok()?;
    let ev = raw_field(line, "ev")?.trim_matches('"');
    let pid = |key: &str| raw_field(line, key).and_then(|v| v.parse::<usize>().ok());
    let hb = || -> Option<Heartbeat> {
        let flag: bool = raw_field(line, "flag")?.parse().ok()?;
        let epoch = raw_field(line, "epoch")
            .map(|v| v.parse::<u8>())
            .transpose()
            .ok()?
            .unwrap_or(0);
        let hb = if flag {
            Heartbeat::plain()
        } else {
            Heartbeat::leave()
        };
        Some(hb.with_epoch(epoch))
    };
    Some(match ev {
        "send" => Event::Send {
            at,
            from: pid("from")?,
            to: pid("to")?,
            hb: hb()?,
        },
        "deliver" => Event::Deliver {
            at,
            from: pid("from")?,
            to: pid("to")?,
            hb: hb()?,
        },
        "lose" => Event::Lose {
            at,
            from: pid("from")?,
            to: pid("to")?,
        },
        "timeout" => Event::Timeout {
            at,
            pid: pid("pid")?,
        },
        "crash" => Event::Crash {
            at,
            pid: pid("pid")?,
        },
        "nv_inactivate" => Event::NvInactivate {
            at,
            pid: pid("pid")?,
        },
        "leave" => Event::Leave {
            at,
            pid: pid("pid")?,
        },
        "revive" => Event::Revive {
            at,
            pid: pid("pid")?,
        },
        "view_change" => Event::ViewChange {
            at,
            pid: pid("pid")?,
            view_no: raw_field(line, "view")?.parse().ok()?,
            coordinator: pid("coord")?,
        },
        "state_transfer" => Event::StateTransfer {
            at,
            from: pid("from")?,
            to: pid("to")?,
            view_no: raw_field(line, "view")?.parse().ok()?,
        },
        _ => return None,
    })
}

/// `Any`-conversion support for [`EventTap`] objects, so an owned tap
/// handed to a sink can be recovered and downcast back to its concrete
/// type after the run. Blanket-implemented for every `'static` type —
/// tap implementors never write this themselves.
pub trait TapAny {
    /// Convert the boxed tap into a boxed [`Any`](std::any::Any) for
    /// downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl<T: std::any::Any> TapAny for T {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// An online consumer of the event stream (e.g. a streaming requirement
/// monitor). Taps are attached to an [`EventSink`] and see every event in
/// emission order, independent of whether the sink also logs or writes.
pub trait EventTap: TapAny {
    /// Observe one event as it happens.
    fn on_event(&mut self, e: &Event);
}

/// A shareable tap handle: the runtime feeds events through it while the
/// harness keeps a clone to read verdicts out afterwards.
pub type SharedTap = Arc<Mutex<dyn EventTap + Send>>;

/// An exclusively-owned tap: the sink is the only holder, so dispatch is
/// a plain virtual call with no mutex. Recover it after the run with
/// [`EventSink::take_owned_taps`] and downcast via [`TapAny::into_any`].
pub type OwnedTap = Box<dyn EventTap + Send>;

/// One attached tap: either exclusively owned by the sink (lock-free
/// dispatch — the fast path for single-threaded runs) or shared behind a
/// mutex (the live runtime, where the harness keeps a handle to read
/// verdicts mid-run and many node sinks feed one monitor).
enum TapSlot {
    Owned(OwnedTap),
    Shared(SharedTap),
}

/// Where a process's events go: an in-memory [`EventLog`], a JSON-lines
/// writer, any number of live [`EventTap`]s — in any combination, or
/// nowhere.
#[derive(Default)]
pub struct EventSink {
    log: Option<EventLog>,
    writer: Option<Box<dyn Write + Send>>,
    taps: Vec<TapSlot>,
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("log", &self.log.as_ref().map(EventLog::len))
            .field("writer", &self.writer.is_some())
            .field("taps", &self.taps.len())
            .finish()
    }
}

impl EventSink {
    /// Discard all events (taps, if attached later, still run).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Keep events in memory for post-run inspection.
    pub fn memory() -> Self {
        EventSink {
            log: Some(EventLog::new()),
            ..Self::default()
        }
    }

    /// Also stream each event as one JSON line to `w` (best-effort: write
    /// errors are ignored rather than taking the protocol down).
    pub fn with_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        self.writer = Some(w);
        self
    }

    /// Attach a live tap; every subsequent [`EventSink::emit`] forwards
    /// the event to it. A poisoned tap mutex is skipped, not fatal.
    pub fn attach_tap(&mut self, tap: SharedTap) {
        self.taps.push(TapSlot::Shared(tap));
    }

    /// Attach a tap the sink owns exclusively. Dispatch is lock-free —
    /// use this on single-threaded paths (the simulator) where nothing
    /// else needs a handle during the run; recover the tap afterwards
    /// with [`take_owned_taps`](Self::take_owned_taps).
    pub fn attach_owned_tap(&mut self, tap: OwnedTap) {
        self.taps.push(TapSlot::Owned(tap));
    }

    /// Detach and return every owned tap (shared taps stay attached), in
    /// attachment order — so a harness can downcast them back to their
    /// concrete types and read verdicts out.
    pub fn take_owned_taps(&mut self) -> Vec<OwnedTap> {
        let mut owned = Vec::new();
        for slot in std::mem::take(&mut self.taps) {
            match slot {
                TapSlot::Owned(t) => owned.push(t),
                shared => self.taps.push(shared),
            }
        }
        owned
    }

    /// Record one event.
    pub fn emit(&mut self, e: &Event) {
        if let Some(log) = &mut self.log {
            log.push(*e);
        }
        if let Some(w) = &mut self.writer {
            let _ = writeln!(w, "{}", event_json(e));
        }
        for tap in &mut self.taps {
            match tap {
                TapSlot::Owned(t) => t.on_event(e),
                TapSlot::Shared(t) => {
                    if let Ok(mut t) = t.lock() {
                        t.on_event(e);
                    }
                }
            }
        }
    }

    /// The in-memory log, if recording.
    pub fn log(&self) -> Option<&EventLog> {
        self.log.as_ref()
    }

    /// Take the in-memory log out of the sink (empty if not recording).
    pub fn take_log(&mut self) -> EventLog {
        self.log.take().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_kind_round_trips() {
        let events = [
            Event::Send {
                at: 10,
                from: 0,
                to: 1,
                hb: Heartbeat::plain(),
            },
            Event::Deliver {
                at: 12,
                from: 1,
                to: 0,
                hb: Heartbeat::plain().with_epoch(3),
            },
            Event::Deliver {
                at: 13,
                from: 1,
                to: 0,
                hb: Heartbeat::leave(),
            },
            Event::Lose {
                at: 12,
                from: 0,
                to: 1,
            },
            Event::Timeout { at: 10, pid: 0 },
            Event::Crash { at: 12, pid: 1 },
            Event::NvInactivate { at: 38, pid: 0 },
            Event::Leave { at: 600, pid: 1 },
            Event::Revive { at: 700, pid: 1 },
            Event::ViewChange {
                at: 710,
                pid: 1,
                view_no: 2,
                coordinator: 1,
            },
            Event::StateTransfer {
                at: 715,
                from: 1,
                to: 0,
                view_no: 2,
            },
        ];
        for e in events {
            let line = event_json(&e);
            assert_eq!(parse_event_json(&line), Some(e), "{line}");
        }
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for bad in [
            "",
            "{}",
            "{\"t\":1}",
            "{\"t\":1,\"ev\":\"warp\",\"pid\":0}",
            "not json",
        ] {
            assert_eq!(parse_event_json(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn taps_see_every_emitted_event() {
        struct Counter(usize);
        impl EventTap for Counter {
            fn on_event(&mut self, _e: &Event) {
                self.0 += 1;
            }
        }
        let tap = Arc::new(Mutex::new(Counter(0)));
        let mut sink = EventSink::disabled();
        sink.attach_tap(tap.clone());
        sink.emit(&Event::Timeout { at: 1, pid: 0 });
        sink.emit(&Event::Crash { at: 2, pid: 1 });
        assert_eq!(tap.lock().unwrap().0, 2);
    }

    #[test]
    fn owned_taps_dispatch_without_a_lock_and_come_back() {
        struct Counter(usize);
        impl EventTap for Counter {
            fn on_event(&mut self, _e: &Event) {
                self.0 += 1;
            }
        }
        let shared = Arc::new(Mutex::new(Counter(0)));
        let mut sink = EventSink::disabled();
        sink.attach_owned_tap(Box::new(Counter(0)));
        sink.attach_tap(shared.clone());
        sink.attach_owned_tap(Box::new(Counter(0)));
        sink.emit(&Event::Timeout { at: 1, pid: 0 });
        sink.emit(&Event::Crash { at: 2, pid: 1 });
        sink.emit(&Event::Revive { at: 3, pid: 1 });
        // Both owned taps come back, in attachment order, downcastable.
        let owned = sink.take_owned_taps();
        assert_eq!(owned.len(), 2);
        for tap in owned {
            let c = tap.into_any().downcast::<Counter>().expect("a Counter");
            assert_eq!(c.0, 3);
        }
        // The shared tap stays attached and keeps seeing events.
        sink.emit(&Event::Leave { at: 4, pid: 1 });
        assert_eq!(shared.lock().unwrap().0, 4);
        assert!(sink.take_owned_taps().is_empty());
    }
}
