//! The rejoinable dynamic heartbeat protocol — the future-work extension
//! of both papers.
//!
//! The 1998 dynamic protocol forbids a process from ever rejoining after
//! it leaves, and the 2009 analysis lists lifting that restriction as
//! future work. This module implements it, in two flavours:
//!
//! * **naive rejoin** (`epochs = false`) — a participant that left simply
//!   starts a new join phase. This is *broken*: a stale join beat from an
//!   earlier incarnation, delivered after the leave, silently re-enrols a
//!   departed participant (the coordinator then starves and inactivates
//!   the whole network without any fault), and symmetrically a stale
//!   leave can un-enrol a freshly re-joined one. `hb-verify`'s rejoin
//!   model exhibits both races by model checking.
//! * **epoch-tagged rejoin** (`epochs = true`) — every heartbeat carries
//!   the sender's *incarnation number*. A participant increments its
//!   epoch at every join; the coordinator remembers, per participant, the
//!   least epoch it is still willing to accept: beats below it are
//!   stale and ignored, and processing a leave of epoch `e` raises the
//!   bar to `e + 1`. Model checking shows this repairs both races.
//!
//! The extension is built on the *fixed* base protocol (corrected §6.2
//! bounds; the composition layer must give receives priority over
//! timeouts) — there is no point extending a base already known to race.

use crate::msg::{Pid, Status};
use crate::params::Params;
use crate::serial::{serial_bump, serial_lt, serial_max};

/// A heartbeat carrying the sender's incarnation number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpochBeat {
    /// `true` = join/stay, `false` = leave (or leave-ack from the
    /// coordinator).
    pub flag: bool,
    /// The sender's incarnation (coordinator beats echo the recipient's
    /// registered epoch).
    pub epoch: u8,
}

/// Immutable description of the rejoin coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinCoordSpec {
    params: Params,
    n: usize,
    epochs: bool,
}

/// Mutable state of the rejoin coordinator.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RejoinCoordState {
    /// Liveness status.
    pub status: Status,
    /// Current round length.
    pub t: u32,
    /// Time in the current round.
    pub elapsed: u32,
    /// Per participant: beat received this round.
    pub rcvd: Vec<bool>,
    /// Per participant: currently enrolled.
    pub jnd: Vec<bool>,
    /// Per participant waiting times.
    pub tm: Vec<u32>,
    /// Per participant: the least incarnation still acceptable.
    pub min_epoch: Vec<u8>,
}

/// Coordinator reaction to an incoming beat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejoinCoordReaction {
    /// Nothing to send.
    None,
    /// Acknowledge a leave to this participant (beat with `flag = false`).
    LeaveAck(Pid, EpochBeat),
}

/// What a round timeout produced (mirrors the base protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejoinTimeoutOutcome {
    /// The coordinator inactivated itself.
    Inactivated,
    /// Broadcast these `(recipient, beat)` pairs.
    Beat(Vec<(Pid, EpochBeat)>),
}

impl RejoinCoordSpec {
    /// A rejoin coordinator for `n` participants; `epochs` selects the
    /// naive or the epoch-tagged variant.
    pub fn new(params: Params, n: usize, epochs: bool) -> Self {
        assert!(n > 0);
        Self { params, n, epochs }
    }

    /// Whether epoch filtering is on.
    pub fn epochs(&self) -> bool {
        self.epochs
    }

    /// The timing parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The initial state: nobody enrolled.
    pub fn init_state(&self) -> RejoinCoordState {
        RejoinCoordState {
            status: Status::Active,
            t: self.params.tmax(),
            elapsed: 0,
            rcvd: vec![true; self.n],
            jnd: vec![false; self.n],
            tm: vec![self.params.tmax(); self.n],
            min_epoch: vec![1; self.n],
        }
    }

    /// Whether the round timeout is due (urgent).
    pub fn timeout_due(&self, s: &RejoinCoordState) -> bool {
        s.status.is_active() && s.elapsed >= s.t
    }

    /// Whether time may pass.
    pub fn may_tick(&self, s: &RejoinCoordState) -> bool {
        !self.timeout_due(s)
    }

    /// Advance one time unit.
    pub fn tick(&self, s: &mut RejoinCoordState) {
        debug_assert!(self.may_tick(s));
        if s.status.is_active() {
            s.elapsed += 1;
        }
    }

    /// Handle the round timeout (same acceleration as the base protocol).
    pub fn on_timeout(&self, s: &mut RejoinCoordState) -> RejoinTimeoutOutcome {
        debug_assert!(self.timeout_due(s));
        let mut decide_min = u32::MAX;
        for i in 0..self.n {
            if !s.jnd[i] {
                continue;
            }
            if s.rcvd[i] {
                s.tm[i] = self.params.tmax();
            } else {
                s.tm[i] = Params::halve(s.tm[i]);
            }
            decide_min = decide_min.min(s.tm[i]);
        }
        if decide_min < self.params.tmin() {
            s.status = Status::NvInactive;
            return RejoinTimeoutOutcome::Inactivated;
        }
        s.t = (0..self.n)
            .filter(|&i| s.jnd[i])
            .map(|i| s.tm[i])
            .min()
            .unwrap_or(self.params.tmax());
        s.elapsed = 0;
        let beats = (0..self.n)
            .filter(|&i| s.jnd[i])
            .map(|i| {
                (
                    i + 1,
                    EpochBeat {
                        flag: true,
                        epoch: s.min_epoch[i],
                    },
                )
            })
            .collect();
        for i in 0..self.n {
            if s.jnd[i] {
                s.rcvd[i] = false;
            }
        }
        RejoinTimeoutOutcome::Beat(beats)
    }

    /// Handle a beat from participant `from`.
    ///
    /// With epochs on: beats below `min_epoch[from]` are stale and
    /// ignored; a join/stay beat registers its epoch; a leave of epoch `e`
    /// un-enrols the participant and raises the bar to `e + 1`.
    pub fn on_heartbeat(
        &self,
        s: &mut RejoinCoordState,
        from: Pid,
        beat: EpochBeat,
    ) -> RejoinCoordReaction {
        assert!((1..=self.n).contains(&from));
        let i = from - 1;
        if !s.status.is_active() {
            return RejoinCoordReaction::None;
        }
        if self.epochs && serial_lt(beat.epoch, s.min_epoch[i]) {
            return RejoinCoordReaction::None; // stale incarnation
        }
        if beat.flag {
            if self.epochs {
                s.min_epoch[i] = serial_max(s.min_epoch[i], beat.epoch);
            }
            s.jnd[i] = true;
            s.rcvd[i] = true;
            RejoinCoordReaction::None
        } else {
            s.jnd[i] = false;
            s.rcvd[i] = false;
            if self.epochs {
                s.min_epoch[i] = serial_max(s.min_epoch[i], serial_bump(beat.epoch));
            }
            RejoinCoordReaction::LeaveAck(
                from,
                EpochBeat {
                    flag: false,
                    epoch: beat.epoch,
                },
            )
        }
    }
}

/// The participant's lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejoinPhase {
    /// Outside the protocol (initial, or after a leave).
    Out,
    /// Sending join beats, waiting for the coordinator's confirmation.
    Joining,
    /// Enrolled.
    In,
}

/// Immutable description of a rejoin participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinRespSpec {
    params: Params,
    epochs: bool,
    max_epoch: u8,
}

/// Mutable state of a rejoin participant.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RejoinRespState {
    /// Liveness status.
    pub status: Status,
    /// Lifecycle phase.
    pub phase: RejoinPhase,
    /// Current incarnation (0 before the first join).
    pub epoch: u8,
    /// Time since the last accepted coordinator beat (or since the join
    /// phase started).
    pub waiting: u32,
    /// Time since the last join beat was sent.
    pub join_elapsed: u32,
}

impl RejoinRespSpec {
    /// A rejoin participant; `max_epoch` bounds the number of
    /// incarnations (keeps verification models finite).
    pub fn new(params: Params, epochs: bool, max_epoch: u8) -> Self {
        assert!(max_epoch >= 1);
        Self {
            params,
            epochs,
            max_epoch,
        }
    }

    /// The watchdog bound for (re)joining participants.
    ///
    /// The §6.2 bound `2·tmax + tmin` assumes every participant starts
    /// together with the coordinator, phase-aligned with its first round.
    /// A *rejoin* can start at any phase of the coordinator's round, and
    /// the worst case grows: the first join beat goes out `tmin` after
    /// the join starts, may ride the channel for `tmin`, land just after
    /// a round timeout, wait up to `tmax` for the next broadcast, which
    /// rides for another `tmin` — `tmax + 3·tmin` in total. Model
    /// checking confirms `max(2·tmax + tmin, tmax + 3·tmin)` is both
    /// sufficient and necessary (see `hb-verify::rejoin_model` tests).
    pub fn watchdog_bound(&self) -> u32 {
        (2 * self.params.tmax() + self.params.tmin())
            .max(self.params.tmax() + 3 * self.params.tmin())
    }

    /// The initial state: out of the protocol, epoch 0.
    pub fn init_state(&self) -> RejoinRespState {
        RejoinRespState {
            status: Status::Active,
            phase: RejoinPhase::Out,
            epoch: 0,
            waiting: 0,
            join_elapsed: 0,
        }
    }

    /// Whether the participant may start a (re)join now.
    pub fn may_join(&self, s: &RejoinRespState) -> bool {
        s.status.is_active() && s.phase == RejoinPhase::Out && s.epoch < self.max_epoch
    }

    /// Start a (re)join: bump the incarnation, enter the join phase.
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`may_join`](Self::may_join).
    pub fn start_join(&self, s: &mut RejoinRespState) {
        debug_assert!(self.may_join(s));
        s.phase = RejoinPhase::Joining;
        s.epoch += 1;
        s.waiting = 0;
        s.join_elapsed = 0;
    }

    /// Whether a join beat must be sent now (urgent; cadence `tmin`,
    /// first beat `tmin` after the join started — as in the base
    /// protocol).
    pub fn join_send_due(&self, s: &RejoinRespState) -> bool {
        s.status.is_active()
            && s.phase == RejoinPhase::Joining
            && s.join_elapsed >= self.params.tmin()
    }

    /// Emit a join beat.
    pub fn on_join_send(&self, s: &mut RejoinRespState) -> EpochBeat {
        debug_assert!(self.join_send_due(s));
        s.join_elapsed = 0;
        EpochBeat {
            flag: true,
            epoch: s.epoch,
        }
    }

    /// Whether the watchdog is due (urgent). Runs while joining or in;
    /// out-of-protocol participants have nothing to watch.
    pub fn watchdog_due(&self, s: &RejoinRespState) -> bool {
        s.status.is_active() && s.phase != RejoinPhase::Out && s.waiting >= self.watchdog_bound()
    }

    /// Fire the watchdog: non-voluntary inactivation.
    pub fn on_watchdog(&self, s: &mut RejoinRespState) {
        debug_assert!(self.watchdog_due(s));
        s.status = Status::NvInactive;
    }

    /// Whether time may pass for this participant.
    pub fn may_tick(&self, s: &RejoinRespState) -> bool {
        !self.watchdog_due(s) && !self.join_send_due(s)
    }

    /// Advance one time unit (clocks run only while joining or in).
    pub fn tick(&self, s: &mut RejoinRespState) {
        debug_assert!(self.may_tick(s));
        if s.status.is_active() && s.phase != RejoinPhase::Out {
            s.waiting += 1;
            if s.phase == RejoinPhase::Joining {
                s.join_elapsed += 1;
            }
        }
    }

    /// Handle a coordinator beat; returns the immediate reply, if any.
    /// `leave` requests departure (honoured only while `In`).
    ///
    /// With epochs on, beats not matching the current incarnation are
    /// stale and ignored.
    pub fn on_beat(
        &self,
        s: &mut RejoinRespState,
        beat: EpochBeat,
        leave: bool,
    ) -> Option<EpochBeat> {
        if !s.status.is_active() || s.phase == RejoinPhase::Out {
            return None;
        }
        if self.epochs && beat.epoch != s.epoch {
            return None; // stale incarnation echo
        }
        if !beat.flag {
            return None; // leave ack: nothing to do
        }
        s.waiting = 0;
        if leave {
            s.phase = RejoinPhase::Out;
            Some(EpochBeat {
                flag: false,
                epoch: s.epoch,
            })
        } else {
            s.phase = RejoinPhase::In;
            Some(EpochBeat {
                flag: true,
                epoch: s.epoch,
            })
        }
    }

    /// Voluntarily inactivate (crash).
    pub fn crash(&self, s: &mut RejoinRespState) {
        if s.status.is_active() {
            s.status = Status::Crashed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(epochs: bool) -> (RejoinCoordSpec, RejoinRespSpec) {
        let params = Params::new(2, 4).unwrap();
        (
            RejoinCoordSpec::new(params, 1, epochs),
            RejoinRespSpec::new(params, epochs, 3),
        )
    }

    #[test]
    fn join_leave_rejoin_lifecycle() {
        let (cs, rs) = specs(true);
        let mut c = cs.init_state();
        let mut r = rs.init_state();
        // incarnation 1
        rs.start_join(&mut r);
        assert_eq!(r.epoch, 1);
        for _ in 0..2 {
            rs.tick(&mut r);
        }
        let join = rs.on_join_send(&mut r);
        cs.on_heartbeat(&mut c, 1, join);
        assert!(c.jnd[0]);
        // coordinator beat confirms; participant immediately leaves
        let reply = rs
            .on_beat(
                &mut r,
                EpochBeat {
                    flag: true,
                    epoch: 1,
                },
                true,
            )
            .unwrap();
        assert!(!reply.flag);
        assert_eq!(r.phase, RejoinPhase::Out);
        let ack = cs.on_heartbeat(&mut c, 1, reply);
        assert!(matches!(ack, RejoinCoordReaction::LeaveAck(1, _)));
        assert!(!c.jnd[0]);
        assert_eq!(c.min_epoch[0], 2);
        // incarnation 2
        rs.start_join(&mut r);
        assert_eq!(r.epoch, 2);
        for _ in 0..2 {
            rs.tick(&mut r);
        }
        let join2 = rs.on_join_send(&mut r);
        cs.on_heartbeat(&mut c, 1, join2);
        assert!(c.jnd[0], "second incarnation must be accepted");
    }

    #[test]
    fn stale_join_beat_is_filtered_with_epochs() {
        let (cs, _) = specs(true);
        let mut c = cs.init_state();
        // incarnation 1 joined and left: bar is now 2
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 1,
            },
        );
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: false,
                epoch: 1,
            },
        );
        assert!(!c.jnd[0]);
        // a stale incarnation-1 join resend straggles in: ignored
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 1,
            },
        );
        assert!(!c.jnd[0], "stale join must not re-enrol");
        // the genuine incarnation 2 is accepted
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 2,
            },
        );
        assert!(c.jnd[0]);
    }

    #[test]
    fn stale_join_beat_re_enrols_without_epochs() {
        let (cs, _) = specs(false);
        let mut c = cs.init_state();
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 1,
            },
        );
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: false,
                epoch: 1,
            },
        );
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 1,
            },
        );
        assert!(c.jnd[0], "the naive coordinator is fooled by the straggler");
    }

    #[test]
    fn stale_leave_beat_is_filtered_with_epochs() {
        let (cs, _) = specs(true);
        let mut c = cs.init_state();
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: true,
                epoch: 2,
            },
        );
        assert!(c.jnd[0]);
        // a leave from incarnation 1 (already superseded): ignored
        cs.on_heartbeat(
            &mut c,
            1,
            EpochBeat {
                flag: false,
                epoch: 1,
            },
        );
        assert!(
            c.jnd[0],
            "stale leave must not un-enrol the new incarnation"
        );
    }

    #[test]
    fn responder_ignores_stale_coordinator_beats() {
        let (_, rs) = specs(true);
        let mut r = rs.init_state();
        rs.start_join(&mut r);
        rs.tick(&mut r);
        // a coordinator beat echoing the *previous* incarnation is stale
        assert_eq!(
            rs.on_beat(
                &mut r,
                EpochBeat {
                    flag: true,
                    epoch: 0
                },
                false
            ),
            None
        );
        assert_eq!(r.phase, RejoinPhase::Joining, "stale beat must not confirm");
        // the matching epoch confirms
        let reply = rs.on_beat(
            &mut r,
            EpochBeat {
                flag: true,
                epoch: 1,
            },
            false,
        );
        assert_eq!(
            reply,
            Some(EpochBeat {
                flag: true,
                epoch: 1
            })
        );
        assert_eq!(r.phase, RejoinPhase::In);
    }

    #[test]
    fn max_epoch_bounds_rejoins() {
        let (_, rs) = specs(true);
        let mut r = rs.init_state();
        for e in 1..=3 {
            assert!(rs.may_join(&r));
            rs.start_join(&mut r);
            assert_eq!(r.epoch, e);
            // confirmed then leaves
            rs.on_beat(
                &mut r,
                EpochBeat {
                    flag: true,
                    epoch: e,
                },
                true,
            );
        }
        assert!(!rs.may_join(&r), "epoch cap reached");
    }

    #[test]
    fn watchdog_fires_while_joining() {
        let (_, rs) = specs(true);
        let mut r = rs.init_state();
        rs.start_join(&mut r);
        let mut t = 0;
        loop {
            if rs.watchdog_due(&r) {
                rs.on_watchdog(&mut r);
                break;
            }
            if rs.join_send_due(&r) {
                rs.on_join_send(&mut r);
                continue;
            }
            rs.tick(&mut r);
            t += 1;
        }
        assert_eq!(t, rs.watchdog_bound());
        assert_eq!(r.status, Status::NvInactive);
    }

    #[test]
    fn out_participant_is_quiescent() {
        let (_, rs) = specs(true);
        let mut r = rs.init_state();
        assert!(!rs.watchdog_due(&r));
        assert!(!rs.join_send_due(&r));
        rs.tick(&mut r);
        assert_eq!(r.waiting, 0, "clocks frozen while out");
        assert_eq!(
            rs.on_beat(
                &mut r,
                EpochBeat {
                    flag: true,
                    epoch: 0
                },
                false
            ),
            None
        );
    }
}
