//! `hb-core` — the accelerated heartbeat protocol family of Gouda &
//! McGuire (ICDCS '98) as pure, deterministic state machines.
//!
//! A heartbeat protocol keeps a set of processes mutually aware of each
//! other's liveness: a coordinator `p[0]` exchanges periodic *heartbeat*
//! messages with participants `p[1..n]`; when a process or channel crashes,
//! every other process eventually *inactivates* itself. The *accelerated*
//! protocols cut the steady-state heartbeat rate to roughly one beat per
//! `tmax` by **halving** the waiting period only while beats are missing:
//! a silent round halves the next round (`tmax → tmax/2 → …`) until the
//! period would drop below `tmin`, at which point the coordinator
//! inactivates. This gives
//!
//! * low overhead (≈ `2/tmax` messages per time unit in steady state),
//! * bounded detection delay (≤ `3·tmax − tmin`, see [`params::Params`]),
//! * robustness: `⌊log₂(tmax/tmin)⌋ + 1` *consecutive* beats must be lost
//!   before a false inactivation.
//!
//! Six variants are implemented (see [`variant::Variant`]): **binary**
//! (two processes), **revised binary** (McGuire & Gouda 2004: the
//! coordinator sends its first beat immediately), **two-phase** (a silent
//! round drops the period straight to `tmin`), **static** (a fixed set of
//! `n` participants), **expanding** (participants may join at runtime), and
//! **dynamic** (participants may join and permanently leave).
//!
//! The state machines are *pure*: all inputs (elapsed time, message
//! arrival, crash) are explicit method calls and all outputs are returned
//! values. The same code is driven by the `hb-sim` discrete-event simulator
//! and mirrored state-for-state by the `hb-verify` model-checking models.
//!
//! The module [`fixes`] implements the corrections proposed by Atif &
//! Mousavi (2009) after model checking found all original variants to
//! violate their natural requirements: receive-priority over timeouts and
//! corrected inactivation time bounds.
//!
//! # Example
//!
//! ```
//! use hb_core::{Params, Variant, FixLevel};
//! use hb_core::coordinator::{CoordSpec, TimeoutOutcome};
//!
//! let params = Params::new(1, 4)?;
//! let spec = CoordSpec::new(Variant::Binary, params, 1, FixLevel::Original);
//! let mut p0 = spec.init_state();
//!
//! // Let a full round elapse, silently.
//! for _ in 0..4 { spec.tick(&mut p0); }
//! assert!(spec.timeout_due(&p0));
//! match spec.on_timeout(&mut p0) {
//!     TimeoutOutcome::Beat => {
//!         assert_eq!(spec.recipients(&p0).collect::<Vec<_>>(), vec![1]);
//!     }
//!     TimeoutOutcome::Inactivated => unreachable!(),
//! }
//! # Ok::<(), hb_core::params::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod dataflow;
pub mod describe;
pub mod events;
pub mod fixes;
pub mod msg;
pub mod params;
pub mod rejoin;
pub mod responder;
pub mod serial;
pub mod trace;
pub mod variant;
pub mod view;

pub use coordinator::{CoordSpec, CoordState};
pub use describe::{DescribeMachine, MachineIr};
pub use fixes::FixLevel;
pub use msg::{Heartbeat, Pid, Status};
pub use params::Params;
pub use responder::{RespSpec, RespState};
pub use variant::Variant;
pub use view::{View, MAX_VIEW_MEMBERS};
