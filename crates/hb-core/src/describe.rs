//! Structural self-description of the protocol machines: an explicit
//! transition-system IR consumed by the `hb-analyze` static analyzer and
//! by the partial-order reduction in `hb-verify`.
//!
//! Every machine ([`CoordSpec`], [`RespSpec`]) can describe itself as a
//! [`MachineIr`]: named control states plus guarded transitions, each
//! annotated with a read/write footprint over the machine's variables
//! (locals, timers, the epoch tag) and its channel endpoints. Guards are
//! conjunctions of symbolic [`Atom`]s, deliberately parameter-free: the
//! IR for `binary/original` is the same shape for every `(tmin, tmax)`.
//!
//! Two consumers:
//!
//! * **lints** (`hb-analyze`) check the IR for the AM09 §6 bug shape — a
//!   time-triggered transition racing a receive on jointly satisfiable
//!   guards — plus unreachable states, dead transitions, ambiguous
//!   receive dispatch, and epoch-monotonicity;
//! * **partial-order reduction** (`hb-verify::por`) derives a static
//!   independence relation from the footprints via [`MachineIr::send_profile`].
//!
//! The footprints are *declared* by the machine implementations and
//! kept deliberately conservative (a variable is listed as read if any
//! code path of the transition consults it). Honesty is enforced by the
//! golden-finding tests in the workspace root and by the POR-vs-full
//! exploration cross-check, which would diverge if a declared
//! independence were false.

use crate::coordinator::CoordSpec;
use crate::fixes::FixLevel;
use crate::responder::RespSpec;
use crate::variant::Variant;

/// Which side of the protocol a machine implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The coordinator `p[0]`.
    Coordinator,
    /// A participant `p[i]`, `i >= 1`.
    Responder,
    /// A group-membership node (the `hb-member` view-change machine,
    /// which subsumes both plain roles and can move between them).
    Member,
}

impl Role {
    /// Lower-case name, used in machine identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Role::Coordinator => "coordinator",
            Role::Responder => "responder",
            Role::Member => "member",
        }
    }
}

/// What kind of variable a footprint entry refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Ordinary local state.
    Local,
    /// A clock: advanced by the global tick, read against bounds.
    Timer,
    /// The §7 incarnation tag (compared in RFC 1982 serial order).
    Epoch,
}

/// One declared machine variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name, as referenced by transition footprints.
    pub name: &'static str,
    /// What kind of state it is.
    pub kind: VarKind,
}

/// What causes a transition to fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// A timer reaching its bound (timeout, watchdog, periodic send).
    Time,
    /// Delivery of a message from the channel.
    Receive,
    /// An environment fault (crash injection).
    Fault,
    /// An internal/administrative step (restart path).
    Internal,
}

/// A symbolic guard conjunct.
///
/// Atoms are abstract predicates over the machine state and the pending
/// message; [`atoms_conflict`] knows which pairs are mutually exclusive,
/// which is all the satisfiability the lints need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Atom {
    /// The machine is active (not crashed, not inactivated).
    Active,
    /// The participant has completed its join phase.
    Joined,
    /// The participant has not yet joined.
    NotJoined,
    /// The named timer has reached its firing bound.
    TimerAtBound(&'static str),
    /// A message is deliverable to this machine.
    MessagePending,
    /// A deliverable message's delay budget is exhausted: it *must* be
    /// delivered within the current instant (before the next tick).
    UrgentMessagePending,
    /// No pending delivery is urgent — the §6.1 receive-priority side
    /// condition that lets a timeout fire without racing a receive.
    NoUrgentMessage,
    /// The pending message's join/leave flag has the given value
    /// (`true` = join/stay heartbeat, `false` = leave or leave-ack).
    MessageFlag(bool),
    /// The pending message's epoch is not behind the registered bar
    /// (RFC 1982 serial order).
    EpochFresh,
    /// The pending message's epoch equals the local incarnation.
    EpochMatches,
    /// The acceleration floor has not been reached: halving the round
    /// still keeps it at or above `tmin`.
    AccelAboveFloor,
    /// The acceleration floor is reached: the next halving would drop
    /// below `tmin`, so the machine gives up instead.
    AccelAtFloor,
}

/// Whether two guard atoms are mutually exclusive.
pub fn atoms_conflict(a: Atom, b: Atom) -> bool {
    use Atom::*;
    matches!(
        (a, b),
        (Joined, NotJoined)
            | (NotJoined, Joined)
            | (NoUrgentMessage, UrgentMessagePending)
            | (UrgentMessagePending, NoUrgentMessage)
            | (MessageFlag(true), MessageFlag(false))
            | (MessageFlag(false), MessageFlag(true))
            | (AccelAboveFloor, AccelAtFloor)
            | (AccelAtFloor, AccelAboveFloor)
    )
}

/// Whether a set of atoms (a conjunction) is satisfiable, i.e. contains
/// no conflicting pair. Atoms are abstract, so pairwise consistency is
/// the whole decision procedure.
pub fn satisfiable(atoms: &[Atom]) -> bool {
    atoms
        .iter()
        .enumerate()
        .all(|(i, &a)| atoms[i + 1..].iter().all(|&b| !atoms_conflict(a, b)))
}

/// How a transition moves the machine's epoch tag, if at all.
///
/// Everything except [`EpochEffect::Clobber`] is monotone in RFC 1982
/// serial order; `Clobber` exists so synthetic IRs can exercise the
/// monotonicity lint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochEffect {
    /// The transition does not write an epoch variable.
    None,
    /// Raise the registered bar to the message's (fresh) tag:
    /// `bar := serial_max(bar, tag)`.
    RaiseToTag,
    /// Raise the bar past a leaver's tag:
    /// `bar := serial_max(bar, bump(tag))`.
    BumpPastLeaver,
    /// Start the next incarnation: `epoch := bump(epoch)`.
    BumpOnRevive,
    /// Overwrite the epoch with an arbitrary value (not monotone).
    Clobber,
}

impl EpochEffect {
    /// Whether the effect is monotone in serial order.
    pub fn is_monotone(self) -> bool {
        !matches!(self, EpochEffect::Clobber)
    }
}

/// The abstract effect of a transition on one non-epoch variable —
/// the assignment summary the `dataflow` range analysis interprets.
/// Epoch variables are updated through [`EpochEffect`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// `var := 0` (timer reset, evidence clear).
    Reset,
    /// `var := c` for the given constant (booleans are 0/1, statuses
    /// use the `Status` discriminant order: active 0, crashed 1,
    /// nv-inactive 2).
    Set(u32),
    /// `var := v` for some `v` inside the variable's declared span —
    /// the round recomputation (`t := min of halved waits`) and the
    /// per-participant commit (`tm[i] := tmax` or the silent step) land
    /// here: the concrete value is parameter-dependent, but provably
    /// stays inside the span.
    ToSpan,
    /// `var := var + 1`, saturating at the span's upper bound (tick-like
    /// counters that urgency keeps below their firing bound).
    Increment,
}

/// One entry of a transition's assignment summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Update {
    /// The written variable (must appear in the transition's `writes`).
    pub var: &'static str,
    /// Its abstract new value.
    pub kind: UpdateKind,
}

/// Convenience constructor for an [`Update`].
pub fn upd(var: &'static str, kind: UpdateKind) -> Update {
    Update { var, kind }
}

/// Whether a transition treats participant ranks interchangeably — the
/// raw material of the symmetry certificate
/// ([`crate::dataflow::symmetry_certificate`]).
///
/// A transition is `Uniform` when relabelling participants commutes
/// with it: its guard, footprint and sends mention peers only through
/// the triggering message or a per-participant slot indexed by the same
/// pid. `Rank` marks a transition whose guard or effect consults a
/// concrete rank asymmetrically (e.g. the failover seniority rule);
/// one such transition refuses the whole machine's certificate, and the
/// carried reason is the counterexample the analyzer reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PidScope {
    /// Relabelling participants commutes with the transition.
    Uniform,
    /// The transition depends on a concrete rank; the string says how.
    Rank(&'static str),
}

/// One guarded transition of a machine.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Short lint-facing name, unique within the machine.
    pub name: &'static str,
    /// Source control state.
    pub from: &'static str,
    /// Target control state.
    pub to: &'static str,
    /// What fires it.
    pub trigger: Trigger,
    /// An environment-choice label: two transitions with different
    /// inputs (e.g. the stay/leave decision) are *intended* branching,
    /// not nondeterminism, and the ambiguity lint exempts them.
    pub input: Option<&'static str>,
    /// Guard conjunction.
    pub guard: Vec<Atom>,
    /// Variables any code path of the transition consults.
    pub reads: Vec<&'static str>,
    /// Variables any code path of the transition may update.
    pub writes: Vec<&'static str>,
    /// Whether the transition consumes the triggering message.
    pub consumes: bool,
    /// Channel endpoints the transition may send on.
    pub sends: Vec<&'static str>,
    /// Epoch discipline of the transition.
    pub epoch_effect: EpochEffect,
    /// Assignment summary for the written non-epoch variables, in the
    /// abstract-value language of [`UpdateKind`]. A written variable
    /// with no summary is havocked to its span by the range analysis.
    pub updates: Vec<Update>,
    /// Whether the transition is rank-interchangeable (see [`PidScope`]).
    pub pid_scope: PidScope,
}

/// Which transition classes of a machine send messages — the footprint
/// summary the partial-order reduction consumes (see
/// `hb-verify::por`). Derived from the IR, not hard-coded, so a machine
/// whose description gains a new send site automatically re-enters the
/// dependence relation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendProfile {
    /// Some time-triggered transition sends (coordinator broadcast,
    /// responder join-phase sends).
    pub time_sends: bool,
    /// Some receive of a flag-`true` (join/stay) message sends (the
    /// responder's reply).
    pub receive_true_sends: bool,
    /// Some receive of a flag-`false` (leave) message sends (the
    /// coordinator's leave-ack).
    pub receive_false_sends: bool,
}

/// The transition-system IR of one machine.
#[derive(Clone, Debug)]
pub struct MachineIr {
    /// Coordinator or responder.
    pub role: Role,
    /// Protocol variant.
    pub variant: Variant,
    /// Fix level the machine was built with.
    pub fix: FixLevel,
    /// Control states.
    pub states: Vec<&'static str>,
    /// The initial control state.
    pub initial: &'static str,
    /// Declared variables.
    pub vars: Vec<VarDecl>,
    /// Guarded transitions.
    pub transitions: Vec<Transition>,
}

impl MachineIr {
    /// `role/variant/fix` identifier, e.g. `coordinator/binary/original`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.role.name(),
            self.variant.name(),
            self.fix.name()
        )
    }

    /// The kind of a declared variable, if declared.
    pub fn var_kind(&self, name: &str) -> Option<VarKind> {
        self.vars.iter().find(|v| v.name == name).map(|v| v.kind)
    }

    /// Summarize which transition classes send (for the independence
    /// relation in `hb-verify::por`).
    pub fn send_profile(&self) -> SendProfile {
        let mut p = SendProfile::default();
        for t in &self.transitions {
            if t.sends.is_empty() {
                continue;
            }
            match t.trigger {
                Trigger::Time => p.time_sends = true,
                Trigger::Receive => {
                    if t.guard.contains(&Atom::MessageFlag(false)) {
                        p.receive_false_sends = true;
                    } else {
                        p.receive_true_sends = true;
                    }
                }
                Trigger::Fault | Trigger::Internal => {}
            }
        }
        p
    }
}

/// A machine that can produce its transition-system IR.
pub trait DescribeMachine {
    /// The machine's IR, shaped by its variant and fix level.
    fn describe(&self) -> MachineIr;
}

impl DescribeMachine for CoordSpec {
    fn describe(&self) -> MachineIr {
        let variant = self.variant();
        let fix = self.fix();
        let rp = fix.receive_priority();
        let rejoin = fix.epoch_rejoin();
        let join = variant.has_join_phase();
        let leave = variant.supports_leave();

        let mut vars = vec![
            VarDecl {
                name: "status",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "t",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "elapsed",
                kind: VarKind::Timer,
            },
            VarDecl {
                name: "rcvd",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "tm",
                kind: VarKind::Timer,
            },
        ];
        if join {
            vars.push(VarDecl {
                name: "jnd",
                kind: VarKind::Local,
            });
        }
        if leave && !rejoin {
            vars.push(VarDecl {
                name: "left",
                kind: VarKind::Local,
            });
        }
        if rejoin {
            vars.push(VarDecl {
                name: "min_epoch",
                kind: VarKind::Epoch,
            });
        }

        // The §6.1 receive-priority side condition on timeout actions.
        let time_guard = |mut g: Vec<Atom>| {
            if rp {
                g.push(Atom::NoUrgentMessage);
            }
            g
        };

        // The acceleration decision consults the join ledger only on
        // join variants.
        let mut timeout_reads = vec!["t", "elapsed", "rcvd", "tm"];
        if join {
            timeout_reads.push("jnd");
        }

        let mut transitions = Vec::new();

        // Round timeout, acceleration branch: halve (or reset) the round
        // and rebroadcast. Clears the per-round `rcvd` evidence.
        transitions.push(Transition {
            name: "accelerate",
            from: "active",
            to: "active",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![
                Atom::Active,
                Atom::TimerAtBound("elapsed"),
                Atom::AccelAboveFloor,
            ]),
            reads: timeout_reads.clone(),
            writes: vec!["t", "elapsed", "rcvd", "tm"],
            consumes: false,
            sends: vec!["to-participants"],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("t", UpdateKind::ToSpan),
                upd("elapsed", UpdateKind::Reset),
                upd("rcvd", UpdateKind::Set(0)),
                upd("tm", UpdateKind::ToSpan),
            ],
            pid_scope: PidScope::Uniform,
        });

        // Round timeout, starvation branch: the acceleration floor is
        // reached with a silent participant — inactivate.
        transitions.push(Transition {
            name: "starve-out",
            from: "active",
            to: "nv-inactive",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![
                Atom::Active,
                Atom::TimerAtBound("elapsed"),
                Atom::AccelAtFloor,
            ]),
            reads: timeout_reads,
            writes: vec!["status"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![upd("status", UpdateKind::Set(2))],
            pid_scope: PidScope::Uniform,
        });

        // A join/stay heartbeat registers liveness (and, under rejoin,
        // the sender's incarnation).
        {
            let mut guard = vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(true)];
            if rejoin {
                guard.push(Atom::EpochFresh);
            }
            let mut writes = vec!["rcvd", "tm"];
            let mut updates = vec![
                upd("rcvd", UpdateKind::Set(1)),
                upd("tm", UpdateKind::ToSpan),
            ];
            if join {
                writes.push("jnd");
                updates.push(upd("jnd", UpdateKind::Set(1)));
            }
            let mut reads = vec![];
            if rejoin {
                reads.push("min_epoch");
                writes.push("min_epoch");
            }
            if leave && !rejoin {
                reads.push("left");
            }
            transitions.push(Transition {
                name: "register-beat",
                from: "active",
                to: "active",
                trigger: Trigger::Receive,
                input: None,
                guard,
                reads,
                writes,
                consumes: true,
                sends: vec![],
                epoch_effect: if rejoin {
                    EpochEffect::RaiseToTag
                } else {
                    EpochEffect::None
                },
                updates,
                pid_scope: PidScope::Uniform,
            });
        }

        // A leave beat un-enrols the sender and is acknowledged.
        if leave {
            let mut reads = vec![];
            let mut writes = vec!["jnd", "rcvd"];
            let mut updates = vec![
                upd("jnd", UpdateKind::Set(0)),
                upd("rcvd", UpdateKind::Set(0)),
            ];
            if rejoin {
                reads.push("min_epoch");
                writes.push("min_epoch");
            } else {
                writes.push("left");
                updates.push(upd("left", UpdateKind::Set(1)));
            }
            transitions.push(Transition {
                name: "ack-leave",
                from: "active",
                to: "active",
                trigger: Trigger::Receive,
                input: None,
                guard: vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(false)],
                reads,
                writes,
                consumes: true,
                sends: vec!["to-participants"],
                epoch_effect: if rejoin {
                    EpochEffect::BumpPastLeaver
                } else {
                    EpochEffect::None
                },
                updates,
                pid_scope: PidScope::Uniform,
            });
        }

        // Environment fault.
        transitions.push(Transition {
            name: "crash",
            from: "active",
            to: "crashed",
            trigger: Trigger::Fault,
            input: None,
            guard: vec![Atom::Active],
            reads: vec![],
            writes: vec!["status"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![upd("status", UpdateKind::Set(1))],
            pid_scope: PidScope::Uniform,
        });

        MachineIr {
            role: Role::Coordinator,
            variant,
            fix,
            states: vec!["active", "nv-inactive", "crashed"],
            initial: "active",
            vars,
            transitions,
        }
    }
}

impl DescribeMachine for RespSpec {
    fn describe(&self) -> MachineIr {
        let variant = self.variant();
        let fix = self.fix();
        let rp = fix.receive_priority();
        let rejoin = fix.epoch_rejoin();
        let join = variant.has_join_phase();
        let leave = variant.supports_leave();

        let mut vars = vec![
            VarDecl {
                name: "status",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "waiting",
                kind: VarKind::Timer,
            },
            VarDecl {
                name: "joined",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "epoch",
                kind: VarKind::Epoch,
            },
        ];
        if join {
            vars.push(VarDecl {
                name: "join_elapsed",
                kind: VarKind::Timer,
            });
        }
        if leave {
            vars.push(VarDecl {
                name: "left",
                kind: VarKind::Local,
            });
        }

        let mut states = Vec::new();
        if join {
            states.push("joining");
        }
        states.push("in");
        if leave {
            states.push("left");
        }
        states.push("nv-inactive");
        states.push("crashed");
        let initial = if join { "joining" } else { "in" };

        let time_guard = |mut g: Vec<Atom>| {
            if rp {
                g.push(Atom::NoUrgentMessage);
            }
            g
        };

        let mut transitions = Vec::new();

        // The watchdog is armed in every phase where clocks run.
        let mut watch_states = vec![("watchdog-in", "in")];
        if join {
            watch_states.push(("watchdog-joining", "joining"));
        }
        for (name, from) in watch_states {
            transitions.push(Transition {
                name,
                from,
                to: "nv-inactive",
                trigger: Trigger::Time,
                input: None,
                guard: time_guard(vec![Atom::Active, Atom::TimerAtBound("waiting")]),
                reads: vec!["waiting"],
                writes: vec!["status"],
                consumes: false,
                sends: vec![],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("status", UpdateKind::Set(2))],
                pid_scope: PidScope::Uniform,
            });
        }

        // Join variants beat unprompted every `tmin` until confirmed.
        if join {
            transitions.push(Transition {
                name: "join-send",
                from: "joining",
                to: "joining",
                trigger: Trigger::Time,
                input: None,
                guard: vec![
                    Atom::Active,
                    Atom::NotJoined,
                    Atom::TimerAtBound("join_elapsed"),
                ],
                reads: vec!["joined", "join_elapsed", "epoch"],
                writes: vec!["join_elapsed"],
                consumes: false,
                sends: vec!["to-coordinator"],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("join_elapsed", UpdateKind::Reset)],
                pid_scope: PidScope::Uniform,
            });

            // The first echoed beat confirms the join. Under the §7
            // rejoin an unconfirmed participant only accepts an echo of
            // its own incarnation.
            let mut guard = vec![
                Atom::Active,
                Atom::NotJoined,
                Atom::MessagePending,
                Atom::MessageFlag(true),
            ];
            if rejoin {
                guard.push(Atom::EpochMatches);
            }
            transitions.push(Transition {
                name: "confirm-join",
                from: "joining",
                to: "in",
                trigger: Trigger::Receive,
                input: None,
                guard,
                reads: vec!["epoch"],
                writes: vec!["waiting", "joined"],
                consumes: true,
                sends: vec!["to-coordinator"],
                epoch_effect: EpochEffect::None,
                updates: vec![
                    upd("waiting", UpdateKind::Reset),
                    upd("joined", UpdateKind::Set(1)),
                ],
                pid_scope: PidScope::Uniform,
            });
        }

        // The steady-state receive: reset the watchdog, reply.
        let steady_guard = |extra: Option<Atom>| {
            let mut g = vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(true)];
            if join {
                g.push(Atom::Joined);
            }
            if let Some(a) = extra {
                g.push(a);
            }
            g
        };
        if leave {
            // The dynamic variant consults the environment: stay or
            // leave. Distinct inputs mark this as intended branching.
            transitions.push(Transition {
                name: "beat-reply-stay",
                from: "in",
                to: "in",
                trigger: Trigger::Receive,
                input: Some("stay"),
                guard: steady_guard(None),
                reads: vec!["epoch"],
                writes: vec!["waiting"],
                consumes: true,
                sends: vec!["to-coordinator"],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("waiting", UpdateKind::Reset)],
                pid_scope: PidScope::Uniform,
            });
            transitions.push(Transition {
                name: "beat-reply-leave",
                from: "in",
                to: "left",
                trigger: Trigger::Receive,
                input: Some("leave"),
                guard: steady_guard(None),
                reads: vec!["epoch"],
                writes: vec!["waiting", "left"],
                consumes: true,
                sends: vec!["to-coordinator"],
                epoch_effect: EpochEffect::None,
                updates: vec![
                    upd("waiting", UpdateKind::Reset),
                    upd("left", UpdateKind::Set(1)),
                ],
                pid_scope: PidScope::Uniform,
            });
            // A leave-ack echo carries flag `false` and is absorbed.
            transitions.push(Transition {
                name: "absorb-ack",
                from: "in",
                to: "in",
                trigger: Trigger::Receive,
                input: None,
                guard: vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(false)],
                reads: vec![],
                writes: vec![],
                consumes: true,
                sends: vec![],
                epoch_effect: EpochEffect::None,
                updates: vec![],
                pid_scope: PidScope::Uniform,
            });
        } else {
            transitions.push(Transition {
                name: "beat-reply",
                from: "in",
                to: "in",
                trigger: Trigger::Receive,
                input: None,
                guard: steady_guard(None),
                reads: vec!["epoch"],
                writes: vec!["waiting"],
                consumes: true,
                sends: vec!["to-coordinator"],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("waiting", UpdateKind::Reset)],
                pid_scope: PidScope::Uniform,
            });
        }

        // Environment fault, from every phase with running clocks.
        let mut crash_states = vec![("crash-in", "in")];
        if join {
            crash_states.push(("crash-joining", "joining"));
        }
        for (name, from) in crash_states {
            transitions.push(Transition {
                name,
                from,
                to: "crashed",
                trigger: Trigger::Fault,
                input: None,
                guard: vec![Atom::Active],
                reads: vec![],
                writes: vec!["status"],
                consumes: false,
                sends: vec![],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("status", UpdateKind::Set(1))],
                pid_scope: PidScope::Uniform,
            });
        }

        // The runtimes' restart path: a fresh incarnation re-enters the
        // protocol (the join phase, for join variants).
        transitions.push(Transition {
            name: "revive",
            from: "crashed",
            to: initial,
            trigger: Trigger::Internal,
            input: None,
            guard: vec![],
            reads: vec!["epoch"],
            writes: vec!["status", "waiting", "joined", "epoch"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::BumpOnRevive,
            updates: vec![
                upd("status", UpdateKind::Set(0)),
                upd("waiting", UpdateKind::Reset),
                upd("joined", UpdateKind::Set(if join { 0 } else { 1 })),
            ],
            pid_scope: PidScope::Uniform,
        });

        MachineIr {
            role: Role::Responder,
            variant,
            fix,
            states,
            initial,
            vars,
            transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn all_machines() -> Vec<MachineIr> {
        let p = Params::new(1, 10).unwrap();
        let mut out = Vec::new();
        for v in Variant::ALL {
            for fix in FixLevel::ALL {
                out.push(CoordSpec::new(v, p, 1, fix).describe());
                out.push(RespSpec::new(v, p, fix).describe());
            }
        }
        out
    }

    #[test]
    fn every_machine_ir_is_well_formed() {
        let machines = all_machines();
        assert_eq!(machines.len(), 48);
        for ir in &machines {
            assert!(ir.states.contains(&ir.initial), "{}", ir.name());
            let mut names = std::collections::HashSet::new();
            for t in &ir.transitions {
                assert!(ir.states.contains(&t.from), "{}/{}", ir.name(), t.name);
                assert!(ir.states.contains(&t.to), "{}/{}", ir.name(), t.name);
                assert!(names.insert(t.name), "{}: dup {}", ir.name(), t.name);
                assert!(satisfiable(&t.guard), "{}/{}", ir.name(), t.name);
                for v in t.reads.iter().chain(&t.writes) {
                    assert!(
                        v == &"status" || ir.var_kind(v).is_some(),
                        "{}/{} references undeclared {v}",
                        ir.name(),
                        t.name
                    );
                }
                for u in &t.updates {
                    assert!(
                        t.writes.contains(&u.var),
                        "{}/{} updates {} outside its write footprint",
                        ir.name(),
                        t.name,
                        u.var
                    );
                }
            }
        }
    }

    #[test]
    fn receive_priority_guards_timeouts_with_the_side_condition() {
        let p = Params::new(1, 10).unwrap();
        for v in Variant::ALL {
            for fix in FixLevel::ALL {
                for ir in [
                    CoordSpec::new(v, p, 1, fix).describe(),
                    RespSpec::new(v, p, fix).describe(),
                ] {
                    for t in ir
                        .transitions
                        .iter()
                        .filter(|t| t.trigger == Trigger::Time && t.name != "join-send")
                    {
                        assert_eq!(
                            t.guard.contains(&Atom::NoUrgentMessage),
                            fix.receive_priority(),
                            "{}/{}",
                            ir.name(),
                            t.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn send_profiles_match_the_protocol_shape() {
        let p = Params::new(1, 10).unwrap();
        let coord = CoordSpec::new(Variant::Dynamic, p, 1, FixLevel::Full)
            .describe()
            .send_profile();
        assert!(coord.time_sends, "broadcast on round timeout");
        assert!(coord.receive_false_sends, "leave-ack");
        assert!(!coord.receive_true_sends);
        let resp = RespSpec::new(Variant::Binary, p, FixLevel::Original)
            .describe()
            .send_profile();
        assert!(resp.receive_true_sends, "beat reply");
        assert!(!resp.receive_false_sends);
        assert!(!resp.time_sends, "no join phase");
        let joiner = RespSpec::new(Variant::Expanding, p, FixLevel::Original)
            .describe()
            .send_profile();
        assert!(joiner.time_sends, "join-phase periodic send");
    }

    #[test]
    fn conflict_table_is_symmetric() {
        let atoms = [
            Atom::Active,
            Atom::Joined,
            Atom::NotJoined,
            Atom::TimerAtBound("waiting"),
            Atom::MessagePending,
            Atom::UrgentMessagePending,
            Atom::NoUrgentMessage,
            Atom::MessageFlag(true),
            Atom::MessageFlag(false),
            Atom::EpochFresh,
            Atom::EpochMatches,
            Atom::AccelAboveFloor,
            Atom::AccelAtFloor,
        ];
        for &a in &atoms {
            assert!(!atoms_conflict(a, a));
            for &b in &atoms {
                assert_eq!(atoms_conflict(a, b), atoms_conflict(b, a));
            }
        }
    }
}
