//! The participant processes `p[i]` (`i >= 1`), for every protocol
//! variant.
//!
//! A participant replies immediately to every coordinator heartbeat and
//! inactivates itself after a watchdog period without one. In the
//! expanding/dynamic variants it starts *outside* the protocol, sending a
//! join heartbeat every `tmin` units until the coordinator's beat confirms
//! the join; in the dynamic variant it may later leave for good by
//! replying with a `flag = false` heartbeat.

use crate::fixes::FixLevel;
use crate::msg::{Heartbeat, Status};
use crate::params::Params;
use crate::variant::Variant;

/// Immutable description of a participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RespSpec {
    variant: Variant,
    params: Params,
    fix: FixLevel,
}

/// Mutable participant state (hashable; used directly inside model
/// states).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RespState {
    /// Liveness status.
    pub status: Status,
    /// Time since the last heartbeat from `p[0]` (or since start).
    pub waiting: u32,
    /// Time since the last join heartbeat was sent (join phase only).
    pub join_elapsed: u32,
    /// Whether the participant has (observed that it has) joined.
    pub joined: bool,
    /// Whether the participant has permanently left (dynamic only).
    pub left: bool,
    /// §7 incarnation of this participant: stamped on every outgoing
    /// beat, bumped by [`RespSpec::revive_state`] on each restart. The
    /// base protocols leave it at 0.
    pub epoch: u8,
}

/// The participant's decision when replying to a coordinator beat in the
/// dynamic protocol. Ignored by every other variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LeaveDecision {
    /// Remain in the protocol (reply `flag = true`).
    Stay,
    /// Leave the protocol for good (reply `flag = false`).
    Leave,
}

impl RespSpec {
    /// Describe a participant for `variant`.
    pub fn new(variant: Variant, params: Params, fix: FixLevel) -> Self {
        Self {
            variant,
            params,
            fix,
        }
    }

    /// The protocol variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The timing parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The fix level in effect.
    pub fn fix(&self) -> FixLevel {
        self.fix
    }

    /// The watchdog bound: time without a coordinator heartbeat after
    /// which the participant inactivates itself. `3·tmax − tmin` in the
    /// original protocols; the §6.2 corrected bounds under
    /// [`FixLevel::corrected_bounds`].
    pub fn watchdog_bound(&self) -> u32 {
        if self.fix.corrected_bounds() {
            self.params.responder_bound_corrected(self.variant)
        } else {
            self.params.responder_bound_original()
        }
    }

    /// The initial participant state. Participants of non-join variants
    /// start joined; expanding/dynamic participants start un-joined with
    /// their first join beat due `tmin` units after start.
    pub fn init_state(&self) -> RespState {
        RespState {
            status: Status::Active,
            waiting: 0,
            join_elapsed: 0,
            joined: !self.variant.has_join_phase(),
            left: false,
            epoch: 0,
        }
    }

    /// The state of a restarted participant (§7 rejoin): a fresh
    /// [`init_state`](Self::init_state) — back in the join phase for the
    /// join variants — carrying the next incarnation after `prev_epoch`.
    /// Runtimes call this on a node-restart path after a crash. The epoch
    /// wraps past 255 back to 0; the coordinator compares epochs in
    /// RFC 1982 serial order (see [`crate::serial`]), so the wrapped
    /// incarnation still registers as fresh.
    pub fn revive_state(&self, prev_epoch: u8) -> RespState {
        let mut s = self.init_state();
        s.epoch = crate::serial::serial_bump(prev_epoch);
        s
    }

    /// Whether this participant runs the §7 epoch-tagged rejoin (rides on
    /// the full §6 fix; see [`FixLevel::epoch_rejoin`]).
    pub fn epoch_rejoin(&self) -> bool {
        self.fix.epoch_rejoin()
    }

    /// Whether the participant's clocks are running (active and not left).
    fn clocks_running(&self, s: &RespState) -> bool {
        s.status.is_active() && !s.left
    }

    /// Whether the watchdog must fire now (urgent).
    pub fn watchdog_due(&self, s: &RespState) -> bool {
        self.clocks_running(s) && s.waiting >= self.watchdog_bound()
    }

    /// Whether a join heartbeat must be sent now (urgent). Join beats go
    /// out every `tmin` units, the first one `tmin` after start, until the
    /// coordinator's beat confirms the join.
    ///
    /// (The mCRL2/UPPAAL sources are ambiguous about whether the *first*
    /// join beat is sent at time 0 or time `tmin`; only the latter
    /// reproduces the paper's Table 2, so that is what we implement. See
    /// DESIGN.md.)
    pub fn join_send_due(&self, s: &RespState) -> bool {
        self.variant.has_join_phase()
            && self.clocks_running(s)
            && !s.joined
            && s.join_elapsed >= self.params.tmin()
    }

    /// Whether time may pass for this process (no urgent event pending).
    pub fn may_tick(&self, s: &RespState) -> bool {
        !self.watchdog_due(s) && !self.join_send_due(s)
    }

    /// Advance one time unit. Clocks freeze once inactive or left.
    ///
    /// # Panics
    ///
    /// Debug-panics if an urgent event is pending.
    pub fn tick(&self, s: &mut RespState) {
        debug_assert!(self.may_tick(s), "tick while a participant event is due");
        if self.clocks_running(s) {
            s.waiting += 1;
            if !s.joined {
                s.join_elapsed += 1;
            }
        }
    }

    /// Voluntarily inactivate (crash). Idempotent once inactive.
    pub fn crash(&self, s: &mut RespState) {
        if s.status.is_active() {
            s.status = Status::Crashed;
        }
    }

    /// Fire the watchdog: non-voluntary inactivation.
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`watchdog_due`](Self::watchdog_due).
    pub fn on_watchdog(&self, s: &mut RespState) {
        debug_assert!(self.watchdog_due(s));
        s.status = Status::NvInactive;
    }

    /// Emit a join heartbeat (resets the join timer).
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`join_send_due`](Self::join_send_due).
    pub fn on_join_send(&self, s: &mut RespState) -> Heartbeat {
        debug_assert!(self.join_send_due(s));
        s.join_elapsed = 0;
        Heartbeat::plain().with_epoch(s.epoch)
    }

    /// Time until the next urgent participant event — the watchdog or, in
    /// the join phase, the next join-heartbeat send — whichever comes
    /// first. `None` once the clocks are frozen (inactive or left).
    ///
    /// This is the participant-side counterpart of
    /// [`CoordSpec::next_timeout_in`](crate::coordinator::CoordSpec::next_timeout_in);
    /// deadline-driven runtimes use it to sleep exactly until the next
    /// protocol event.
    pub fn next_event_in(&self, s: &RespState) -> Option<u32> {
        if !self.clocks_running(s) {
            return None;
        }
        let mut next = self.watchdog_bound().saturating_sub(s.waiting);
        if self.variant.has_join_phase() && !s.joined {
            next = next.min(self.params.tmin().saturating_sub(s.join_elapsed));
        }
        Some(next)
    }

    /// Handle a heartbeat from the coordinator; returns the immediate
    /// reply, if any.
    ///
    /// An active participant resets its watchdog, marks itself joined and
    /// replies at once. In the dynamic protocol the reply carries the
    /// participant's `decision`; a [`LeaveDecision::Leave`] reply makes the
    /// departure permanent. Inactive or left participants consume the
    /// message silently, as do coordinator leave-acknowledgements
    /// (`flag = false`).
    ///
    /// Under the §7 rejoin, a join-phase participant additionally ignores
    /// coordinator beats whose epoch echo does not match its own
    /// incarnation (mirroring
    /// [`RejoinRespSpec::on_beat`](crate::rejoin::RejoinRespSpec::on_beat)):
    /// after a restart the coordinator keeps echoing the superseded epoch
    /// until the fresh join beat registers, and those echoes must neither
    /// reset the watchdog nor confirm the join. Non-join variants have no
    /// join to confirm, so they accept any epoch and let their reply
    /// (stamped with the current incarnation) re-register them.
    pub fn on_beat(
        &self,
        s: &mut RespState,
        hb: Heartbeat,
        decision: LeaveDecision,
    ) -> Option<Heartbeat> {
        if !s.status.is_active() || s.left {
            return None;
        }
        if self.epoch_rejoin() && self.variant.has_join_phase() && hb.epoch != s.epoch {
            return None;
        }
        if !hb.flag {
            // Leave acknowledgement from p[0]; nothing further to do (we
            // already left when we sent the request — this only arrives
            // here in reordering corner cases and is ignored).
            return None;
        }
        s.waiting = 0;
        s.joined = true;
        if self.variant.supports_leave() && decision == LeaveDecision::Leave {
            s.left = true;
            Some(Heartbeat::leave().with_epoch(s.epoch))
        } else {
            Some(Heartbeat::plain().with_epoch(s.epoch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(variant: Variant, tmin: u32, tmax: u32, fix: FixLevel) -> RespSpec {
        RespSpec::new(variant, Params::new(tmin, tmax).unwrap(), fix)
    }

    #[test]
    fn watchdog_bounds_per_fix_level() {
        assert_eq!(
            spec(Variant::Binary, 1, 10, FixLevel::Original).watchdog_bound(),
            29
        );
        assert_eq!(
            spec(Variant::Binary, 1, 10, FixLevel::Full).watchdog_bound(),
            20
        );
        assert_eq!(
            spec(Variant::Expanding, 1, 10, FixLevel::Full).watchdog_bound(),
            21
        );
        assert_eq!(
            spec(Variant::Dynamic, 4, 10, FixLevel::CorrectedBounds).watchdog_bound(),
            24
        );
        // Receive-priority alone keeps the original bound.
        assert_eq!(
            spec(Variant::Binary, 1, 10, FixLevel::ReceivePriority).watchdog_bound(),
            29
        );
    }

    #[test]
    fn watchdog_fires_exactly_at_bound() {
        let sp = spec(Variant::Binary, 1, 2, FixLevel::Original); // bound = 5
        let mut s = sp.init_state();
        for _ in 0..4 {
            assert!(!sp.watchdog_due(&s));
            sp.tick(&mut s);
        }
        sp.tick(&mut s);
        assert!(sp.watchdog_due(&s));
        assert!(!sp.may_tick(&s));
        sp.on_watchdog(&mut s);
        assert_eq!(s.status, Status::NvInactive);
    }

    #[test]
    fn beat_resets_watchdog_and_replies() {
        let sp = spec(Variant::Binary, 1, 2, FixLevel::Original);
        let mut s = sp.init_state();
        for _ in 0..3 {
            sp.tick(&mut s);
        }
        let reply = sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay);
        assert_eq!(reply, Some(Heartbeat::plain()));
        assert_eq!(s.waiting, 0);
    }

    #[test]
    fn crashed_participant_never_replies() {
        let sp = spec(Variant::Binary, 1, 2, FixLevel::Original);
        let mut s = sp.init_state();
        sp.crash(&mut s);
        assert_eq!(
            sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay),
            None
        );
        assert!(!sp.watchdog_due(&s));
    }

    #[test]
    fn join_phase_sends_every_tmin_starting_at_tmin() {
        let sp = spec(Variant::Expanding, 3, 10, FixLevel::Original);
        let mut s = sp.init_state();
        assert!(!s.joined);
        assert!(!sp.join_send_due(&s)); // not at time 0
        for _ in 0..3 {
            sp.tick(&mut s);
        }
        assert!(sp.join_send_due(&s));
        assert!(!sp.may_tick(&s));
        assert_eq!(sp.on_join_send(&mut s), Heartbeat::plain());
        assert_eq!(s.join_elapsed, 0);
        // resend cadence continues
        for _ in 0..3 {
            sp.tick(&mut s);
        }
        assert!(sp.join_send_due(&s));
    }

    #[test]
    fn coordinator_beat_confirms_join_and_stops_resends() {
        let sp = spec(Variant::Expanding, 3, 10, FixLevel::Original);
        let mut s = sp.init_state();
        sp.tick(&mut s);
        let reply = sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay);
        assert_eq!(reply, Some(Heartbeat::plain()));
        assert!(s.joined);
        for _ in 0..20 {
            assert!(!sp.join_send_due(&s));
            if sp.may_tick(&s) {
                sp.tick(&mut s);
            } else {
                break;
            }
        }
    }

    #[test]
    fn join_phase_watchdog_runs_from_start() {
        // Expanding p[i] inactivates 3*tmax - tmin after start if p[0]
        // never answers.
        let sp = spec(Variant::Expanding, 2, 4, FixLevel::Original); // bound 10
        let mut s = sp.init_state();
        let mut now = 0;
        loop {
            if sp.watchdog_due(&s) {
                break;
            }
            if sp.join_send_due(&s) {
                sp.on_join_send(&mut s);
                continue;
            }
            sp.tick(&mut s);
            now += 1;
        }
        assert_eq!(now, 10);
    }

    #[test]
    fn next_event_in_tracks_watchdog_and_join_timer() {
        let sp = spec(Variant::Expanding, 3, 10, FixLevel::Original); // bound 27
        let mut s = sp.init_state();
        // Join phase: the join send (due at tmin = 3) comes first.
        assert_eq!(sp.next_event_in(&s), Some(3));
        sp.tick(&mut s);
        assert_eq!(sp.next_event_in(&s), Some(2));
        // Once joined, only the watchdog remains.
        sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay);
        assert_eq!(sp.next_event_in(&s), Some(27));
        // Frozen clocks report no deadline.
        sp.crash(&mut s);
        assert_eq!(sp.next_event_in(&s), None);
    }

    #[test]
    fn next_event_in_zero_when_due() {
        let sp = spec(Variant::Binary, 1, 2, FixLevel::Original); // bound 5
        let mut s = sp.init_state();
        for _ in 0..5 {
            sp.tick(&mut s);
        }
        assert!(sp.watchdog_due(&s));
        assert_eq!(sp.next_event_in(&s), Some(0));
    }

    #[test]
    fn dynamic_leave_is_permanent_and_silent() {
        let sp = spec(Variant::Dynamic, 1, 10, FixLevel::Original);
        let mut s = sp.init_state();
        sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay);
        assert!(s.joined && !s.left);
        let reply = sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Leave);
        assert_eq!(reply, Some(Heartbeat::leave()));
        assert!(s.left);
        // After leaving: no watchdog, no replies, clocks frozen.
        assert!(!sp.watchdog_due(&s));
        assert_eq!(
            sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay),
            None
        );
        sp.tick(&mut s);
        assert_eq!(s.waiting, 0);
    }

    #[test]
    fn leave_decision_ignored_outside_dynamic() {
        let sp = spec(Variant::Static, 1, 10, FixLevel::Original);
        let mut s = sp.init_state();
        let reply = sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Leave);
        assert_eq!(reply, Some(Heartbeat::plain()));
        assert!(!s.left);
    }

    #[test]
    fn leave_ack_is_ignored() {
        let sp = spec(Variant::Dynamic, 1, 10, FixLevel::Original);
        let mut s = sp.init_state();
        sp.tick(&mut s);
        let w = s.waiting;
        assert_eq!(
            sp.on_beat(&mut s, Heartbeat::leave(), LeaveDecision::Stay),
            None
        );
        assert_eq!(s.waiting, w, "leave ack must not reset the watchdog");
    }

    #[test]
    fn revive_state_bumps_the_epoch_and_reenters_the_join_phase() {
        let sp = spec(Variant::Expanding, 3, 10, FixLevel::Full);
        let mut s = sp.init_state();
        assert_eq!(s.epoch, 0);
        sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay);
        sp.crash(&mut s);
        let r = sp.revive_state(s.epoch);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.status, Status::Active);
        assert!(!r.joined, "restart re-enters the join phase");
        assert_eq!((r.waiting, r.join_elapsed), (0, 0));
        // Wrap-around at the top of the epoch space: the 257th
        // incarnation re-uses epoch 0 (RFC 1982 serial order keeps it
        // fresh at the coordinator).
        assert_eq!(sp.revive_state(255).epoch, 0);
        // Non-join variants restart straight into the joined steady state.
        let sp = spec(Variant::Binary, 3, 10, FixLevel::Full);
        assert!(sp.revive_state(0).joined);
        assert_eq!(sp.revive_state(0).epoch, 1);
    }

    #[test]
    fn outgoing_beats_carry_the_incarnation() {
        let sp = spec(Variant::Expanding, 2, 10, FixLevel::Full);
        let mut s = sp.revive_state(0);
        for _ in 0..2 {
            sp.tick(&mut s);
        }
        assert_eq!(
            sp.on_join_send(&mut s),
            Heartbeat::plain().with_epoch(1),
            "join beats announce the new incarnation"
        );
        let reply = sp.on_beat(
            &mut s,
            Heartbeat::plain().with_epoch(1),
            LeaveDecision::Stay,
        );
        assert_eq!(reply, Some(Heartbeat::plain().with_epoch(1)));
    }

    #[test]
    fn rejoin_participant_ignores_superseded_epoch_echoes() {
        let sp = spec(Variant::Expanding, 2, 10, FixLevel::Full);
        let mut s = sp.revive_state(0); // epoch 1
        sp.tick(&mut s);
        let w = s.waiting;
        // The coordinator still echoes the pre-crash epoch 0.
        assert_eq!(
            sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay),
            None
        );
        assert_eq!(s.waiting, w, "stale echo must not reset the watchdog");
        assert!(!s.joined, "stale echo must not confirm the join");
        // Without the rejoin fix the same echo is accepted (naive).
        let sp = spec(Variant::Expanding, 2, 10, FixLevel::CorrectedBounds);
        let mut s = sp.revive_state(0);
        assert!(sp
            .on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay)
            .is_some());
        // Non-join variants accept any epoch even under the full fix.
        let sp = spec(Variant::Binary, 2, 10, FixLevel::Full);
        let mut s = sp.revive_state(0);
        assert_eq!(
            sp.on_beat(&mut s, Heartbeat::plain(), LeaveDecision::Stay),
            Some(Heartbeat::plain().with_epoch(1))
        );
    }

    #[test]
    fn non_join_variants_start_joined() {
        for v in [
            Variant::Binary,
            Variant::RevisedBinary,
            Variant::TwoPhase,
            Variant::Static,
        ] {
            assert!(spec(v, 1, 10, FixLevel::Original).init_state().joined);
        }
        for v in [Variant::Expanding, Variant::Dynamic] {
            assert!(!spec(v, 1, 10, FixLevel::Original).init_state().joined);
        }
    }
}
