//! Fixpoint abstract interpretation over the [`crate::describe`] IR:
//! per-variable interval/parity ranges and the symmetry certificate.
//!
//! The IR is deliberately parameter-free — `binary/original` has the
//! same shape for every `(tmin, tmax)` — so the analysis is split in
//! two:
//!
//! * a [`Concretization`] gives the parameter-dependent numeric meaning
//!   of the symbols: the *span* (absolute bound) of every variable, its
//!   initial value, and the firing interval of every timer. The
//!   constructors ([`Concretization::coordinator`],
//!   [`Concretization::responder`]) derive these from the spec structs
//!   and the urgency discipline (a timer can never pass its firing
//!   bound because the tick action is disabled while an event is due);
//! * [`analyze`] runs a worklist fixpoint over the machine's control
//!   states, interpreting guards as meets and transition
//!   [`UpdateKind`] / [`EpochEffect`] summaries as abstract
//!   assignments, with widening to the span after repeated growth.
//!
//! The analysis is parameterized by the *active trigger set*: the
//! checker's composed model exercises `Time`, `Receive` and `Fault`
//! transitions but not the `Internal` restart path, so under that set
//! the epoch variables are provably pinned to `[0, 0]` (or `[0, 1]`
//! for the coordinator bar under §7 rejoin with leaves) and the packed
//! state encoding in `hb-verify` spends zero or one bit on them.
//!
//! The second product is the **symmetry certificate**
//! ([`symmetry_certificate`]): a static proof that responder sub-states
//! are fully interchangeable. The proof obligation is discharged
//! structurally — the guard language ([`Atom`]) has no pid-valued
//! constructor and every send addresses a peer only through the
//! triggering message's endpoint, so rank asymmetry can only enter
//! through an explicitly declared [`PidScope::Rank`] transition. A
//! machine with such a transition is refused, and the transition name
//! is the counterexample the analyzer reports. Certified machines are
//! what lets `hb-verify::symmetry` replace `n!` brute-force
//! canonicalization with an `O(n log n)` sort-key pass; the declared
//! scopes are cross-checked dynamically by the quotient-vs-brute-force
//! agreement gate in CI.

use std::collections::BTreeMap;

use crate::coordinator::CoordSpec;
use crate::describe::{
    Atom, DescribeMachine, EpochEffect, MachineIr, PidScope, Transition, Trigger, UpdateKind,
    VarKind,
};
use crate::responder::RespSpec;

/// A closed integer interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Inclusive upper bound.
    pub hi: u32,
}

impl Interval {
    /// The interval `[lo, hi]`. Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The singleton `[v, v]`.
    pub fn point(v: u32) -> Self {
        Self { lo: v, hi: v }
    }

    /// Smallest interval containing both.
    pub fn hull(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn meet(self, other: Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Self { lo, hi })
    }

    /// Whether `v` lies inside.
    pub fn contains(self, v: u32) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of bits needed to store `v - lo` for any `v` in the
    /// interval — the packed-encoding width. A singleton needs zero.
    pub fn bits(self) -> u32 {
        let delta = self.hi - self.lo;
        32 - delta.leading_zeros()
    }
}

/// The parity half of the abstract domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parity {
    /// Provably even.
    Even,
    /// Provably odd.
    Odd,
    /// Unknown.
    Either,
}

impl Parity {
    /// Parity of a concrete value.
    pub fn of(v: u32) -> Self {
        if v.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Best parity for a whole interval (exact only on singletons).
    pub fn of_interval(iv: Interval) -> Self {
        if iv.lo == iv.hi {
            Parity::of(iv.lo)
        } else {
            Parity::Either
        }
    }

    /// Lattice join.
    pub fn join(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            Parity::Either
        }
    }

    /// Lattice meet, `None` when contradictory (Even ∧ Odd).
    pub fn meet(self, other: Self) -> Option<Self> {
        match (self, other) {
            (Parity::Either, p) | (p, Parity::Either) => Some(p),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// Parity after `+1`.
    pub fn flip(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
            Parity::Either => Parity::Either,
        }
    }
}

/// One abstract variable value: an interval refined by a parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsVal {
    /// Interval component.
    pub iv: Interval,
    /// Parity component.
    pub parity: Parity,
}

impl AbsVal {
    /// The singleton abstraction of `v`.
    pub fn point(v: u32) -> Self {
        Self {
            iv: Interval::point(v),
            parity: Parity::of(v),
        }
    }

    /// The whole span, parity as precise as the span allows.
    pub fn span(iv: Interval) -> Self {
        Self {
            iv,
            parity: Parity::of_interval(iv),
        }
    }

    /// Lattice join.
    pub fn join(self, other: Self) -> Self {
        Self {
            iv: self.iv.hull(other.iv),
            parity: self.parity.join(other.parity),
        }
    }

    /// Lattice meet, `None` when the components contradict.
    pub fn meet(self, other: Self) -> Option<Self> {
        let iv = self.iv.meet(other.iv)?;
        let parity = self.parity.meet(other.parity)?;
        // A singleton interval pins the parity; a contradiction there
        // means the conjunction is unsatisfiable.
        if iv.lo == iv.hi {
            Parity::of(iv.lo).meet(parity)?;
        }
        Some(Self { iv, parity })
    }
}

/// Numeric meaning for one machine's parameter-free IR symbols.
#[derive(Clone, Debug)]
pub struct Concretization {
    /// Absolute bound (span) of each variable the machine may declare.
    pub spans: BTreeMap<&'static str, Interval>,
    /// Initial-value interval of each variable.
    pub init: BTreeMap<&'static str, Interval>,
    /// Firing interval of each timer (the `TimerAtBound` refinement).
    pub bounds: BTreeMap<&'static str, Interval>,
    /// Epoch tags carried by deliverable flag-`true` messages.
    pub msg_epoch: Interval,
    /// Epoch tags carried by deliverable flag-`false` (leave) messages.
    pub leaver_epoch: Interval,
}

impl Concretization {
    /// Spans/inits/bounds for a coordinator spec.
    ///
    /// Invariants encoded here: the round length `t` starts at `tmax`
    /// and every recomputation commits values in `[tmin, tmax]` (a
    /// halving below `tmin` inactivates instead of committing);
    /// `elapsed` never passes `t <= tmax` because the timeout is urgent;
    /// the per-participant commits `tm[i]` obey the same floor.
    pub fn coordinator(spec: &CoordSpec) -> Self {
        let p = spec.params();
        let (tmin, tmax) = (p.tmin(), p.tmax());
        let join = spec.variant().has_join_phase();
        let mut spans = BTreeMap::new();
        let mut init = BTreeMap::new();
        let mut bounds = BTreeMap::new();
        spans.insert("status", Interval::new(0, 2));
        init.insert("status", Interval::point(0));
        spans.insert("t", Interval::new(tmin, tmax));
        init.insert("t", Interval::point(tmax));
        spans.insert("elapsed", Interval::new(0, tmax));
        init.insert(
            "elapsed",
            Interval::point(if spec.variant().initial_send_immediate() {
                tmax
            } else {
                0
            }),
        );
        // The round timeout fires when `elapsed == t`, and `t` ranges
        // over `[tmin, tmax]`.
        bounds.insert("elapsed", Interval::new(tmin, tmax));
        spans.insert("rcvd", Interval::new(0, 1));
        init.insert("rcvd", Interval::point(1));
        spans.insert("tm", Interval::new(tmin, tmax));
        init.insert("tm", Interval::point(tmax));
        spans.insert("jnd", Interval::new(0, 1));
        init.insert("jnd", Interval::point(if join { 0 } else { 1 }));
        spans.insert("left", Interval::new(0, 1));
        init.insert("left", Interval::point(0));
        spans.insert("min_epoch", Interval::new(0, 255));
        init.insert("min_epoch", Interval::point(0));
        Self {
            spans,
            init,
            bounds,
            msg_epoch: Interval::point(0),
            leaver_epoch: Interval::point(0),
        }
    }

    /// Spans/inits/bounds for a responder spec.
    ///
    /// The watchdog bound is the fix-level-dependent
    /// [`RespSpec::watchdog_bound`]; urgency keeps `waiting` at or
    /// below it. `join_elapsed` ticks only while unjoined and its send
    /// fires at `tmin`, so it never passes `tmin`.
    pub fn responder(spec: &RespSpec) -> Self {
        let p = spec.params();
        let tmin = p.tmin();
        let wd = spec.watchdog_bound();
        let join = spec.variant().has_join_phase();
        let mut spans = BTreeMap::new();
        let mut init = BTreeMap::new();
        let mut bounds = BTreeMap::new();
        spans.insert("status", Interval::new(0, 2));
        init.insert("status", Interval::point(0));
        spans.insert("waiting", Interval::new(0, wd));
        init.insert("waiting", Interval::point(0));
        bounds.insert("waiting", Interval::point(wd));
        spans.insert("joined", Interval::new(0, 1));
        init.insert("joined", Interval::point(if join { 0 } else { 1 }));
        spans.insert("epoch", Interval::new(0, 255));
        init.insert("epoch", Interval::point(0));
        spans.insert("join_elapsed", Interval::new(0, tmin));
        init.insert("join_elapsed", Interval::point(0));
        bounds.insert("join_elapsed", Interval::point(tmin));
        spans.insert("left", Interval::new(0, 1));
        init.insert("left", Interval::point(0));
        Self {
            spans,
            init,
            bounds,
            msg_epoch: Interval::point(0),
            leaver_epoch: Interval::point(0),
        }
    }

    /// Replace the wire-epoch inputs (used by the system-level fixpoint).
    pub fn with_wire_epochs(mut self, msg: Interval, leaver: Interval) -> Self {
        self.msg_epoch = msg;
        self.leaver_epoch = leaver;
        self
    }

    /// The declared span of `var`. Panics when the concretization does
    /// not cover a variable the IR declares — a missing span would
    /// silently degrade every downstream width proof.
    pub fn span(&self, var: &str) -> Interval {
        *self
            .spans
            .get(var)
            .unwrap_or_else(|| panic!("concretization missing span for {var}"))
    }

    /// The initial interval of `var` (same coverage contract as
    /// [`Concretization::span`]).
    pub fn initial(&self, var: &str) -> Interval {
        *self
            .init
            .get(var)
            .unwrap_or_else(|| panic!("concretization missing init for {var}"))
    }
}

/// The trigger set the composed checker model exercises: timeouts,
/// deliveries and crash faults, but not the `Internal` restart path.
pub const CHECKER_TRIGGERS: [Trigger; 3] = [Trigger::Time, Trigger::Receive, Trigger::Fault];

/// Widen a state's environment after this many joins.
const WIDEN_AFTER: usize = 6;

type Env = BTreeMap<&'static str, AbsVal>;

/// Result of [`analyze`]: ranges per control state and their hull.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Per-control-state variable ranges (absent state = unreachable).
    pub at: BTreeMap<&'static str, BTreeMap<&'static str, AbsVal>>,
    /// Join over all reachable control states — the machine-wide range.
    pub hull: BTreeMap<&'static str, AbsVal>,
    /// Control states unreachable under the active trigger set.
    pub unreachable: Vec<&'static str>,
}

impl Analysis {
    /// The machine-wide range of `var`, if the variable is declared and
    /// some state is reachable.
    pub fn range(&self, var: &str) -> Option<Interval> {
        self.hull.get(var).map(|a| a.iv)
    }
}

/// Relax every timer variable's upper bound to its span: within a
/// control state the global tick advances timers, and urgency caps them
/// at the firing bound already folded into the span.
fn relax_timers(ir: &MachineIr, conc: &Concretization, env: &mut Env) {
    for decl in &ir.vars {
        if decl.kind != VarKind::Timer {
            continue;
        }
        if let Some(v) = env.get_mut(decl.name) {
            let span = conc.span(decl.name);
            v.iv = Interval::new(v.iv.lo.min(span.hi), span.hi);
            v.parity = if v.iv.lo == v.iv.hi {
                Parity::of(v.iv.lo)
            } else {
                Parity::Either
            };
        }
    }
}

/// Guard refinement: meet the environment with what the atoms pin down.
/// Returns `None` when the guard is unsatisfiable in this environment.
fn refine(env: &mut Env, guard: &[Atom]) -> Option<()> {
    let mut pin = |var: &'static str, val: AbsVal| -> Option<()> {
        if let Some(cur) = env.get(var).copied() {
            env.insert(var, cur.meet(val)?);
        }
        Some(())
    };
    for atom in guard {
        match atom {
            Atom::Active => pin("status", AbsVal::point(0))?,
            Atom::Joined => pin("joined", AbsVal::point(1))?,
            Atom::NotJoined => pin("joined", AbsVal::point(0))?,
            Atom::TimerAtBound(_) => {} // handled below with the bound interval
            _ => {}
        }
    }
    Some(())
}

/// Apply one transition's summary to a source environment.
fn transfer(ir: &MachineIr, conc: &Concretization, t: &Transition, src: &Env) -> Option<Env> {
    let mut env = src.clone();
    refine(&mut env, &t.guard)?;
    for atom in &t.guard {
        if let Atom::TimerAtBound(timer) = atom {
            if let (Some(cur), Some(bound)) = (env.get(timer).copied(), conc.bounds.get(timer)) {
                let met = cur.meet(AbsVal::span(*bound))?;
                env.insert(timer, met);
            }
        }
    }
    // Non-epoch assignments: the declared summaries, then a havoc to
    // the span for any written variable without one.
    for u in &t.updates {
        let span = conc.span(u.var);
        let new = match u.kind {
            UpdateKind::Reset => AbsVal::point(0),
            UpdateKind::Set(c) => AbsVal::point(c),
            UpdateKind::ToSpan => AbsVal::span(span),
            UpdateKind::Increment => {
                let cur = env.get(u.var).copied().unwrap_or(AbsVal::span(span));
                AbsVal {
                    iv: Interval::new((cur.iv.lo + 1).min(span.hi), (cur.iv.hi + 1).min(span.hi)),
                    parity: cur.parity.flip(),
                }
            }
        };
        env.insert(u.var, new);
    }
    for w in &t.writes {
        let is_epoch = ir.var_kind(w) == Some(VarKind::Epoch);
        if is_epoch || t.updates.iter().any(|u| &u.var == w) {
            continue;
        }
        env.insert(w, AbsVal::span(conc.span(w)));
    }
    // Epoch assignments, via the declared effect.
    if t.epoch_effect != EpochEffect::None {
        for w in &t.writes {
            if ir.var_kind(w) != Some(VarKind::Epoch) {
                continue;
            }
            let span = conc.span(w);
            let cur = env.get(w).copied().unwrap_or(AbsVal::span(span));
            let new = match t.epoch_effect {
                EpochEffect::None => cur,
                EpochEffect::RaiseToTag => AbsVal::span(cur.iv.hull(conc.msg_epoch)),
                EpochEffect::BumpPastLeaver => {
                    if conc.leaver_epoch.hi >= span.hi {
                        AbsVal::span(span) // bump wraps: lose precision
                    } else {
                        AbsVal::span(cur.iv.hull(Interval::new(
                            conc.leaver_epoch.lo + 1,
                            conc.leaver_epoch.hi + 1,
                        )))
                    }
                }
                EpochEffect::BumpOnRevive => {
                    if cur.iv.hi >= span.hi {
                        AbsVal::span(span) // wraps
                    } else {
                        AbsVal {
                            iv: Interval::new(cur.iv.lo + 1, cur.iv.hi + 1),
                            parity: cur.parity.flip(),
                        }
                    }
                }
                EpochEffect::Clobber => AbsVal::span(span),
            };
            env.insert(w, new);
        }
    }
    relax_timers(ir, conc, &mut env);
    Some(env)
}

/// Join `src` into `tgt`; widen changed variables to their span once a
/// state has been joined more than [`WIDEN_AFTER`] times. Returns
/// whether anything changed.
fn join_env(conc: &Concretization, tgt: &mut Env, src: &Env, joins_so_far: usize) -> bool {
    let mut changed = false;
    for (var, val) in src {
        let merged = match tgt.get(var) {
            Some(old) => {
                let j = old.join(*val);
                if j == *old {
                    continue;
                }
                if joins_so_far > WIDEN_AFTER {
                    AbsVal::span(conc.span(var))
                } else {
                    j
                }
            }
            None => *val,
        };
        if tgt.get(var) != Some(&merged) {
            tgt.insert(var, merged);
            changed = true;
        }
    }
    changed
}

/// Run the fixpoint over one machine's IR.
///
/// `active` restricts which triggers the surrounding composition can
/// fire; transitions outside the set are treated as disabled (their
/// target states may become unreachable, and their effects — e.g. the
/// epoch bump on revive — never pollute the ranges).
pub fn analyze(ir: &MachineIr, conc: &Concretization, active: &[Trigger]) -> Analysis {
    let mut init_env: Env = ir
        .vars
        .iter()
        .map(|d| (d.name, AbsVal::span(conc.initial(d.name))))
        .collect();
    relax_timers(ir, conc, &mut init_env);

    let mut at: BTreeMap<&'static str, Env> = BTreeMap::new();
    let mut joins: BTreeMap<&'static str, usize> = BTreeMap::new();
    at.insert(ir.initial, init_env);
    let mut work: Vec<&'static str> = vec![ir.initial];
    while let Some(state) = work.pop() {
        let src = match at.get(state) {
            Some(e) => e.clone(),
            None => continue,
        };
        for t in ir.transitions.iter().filter(|t| t.from == state) {
            if !active.contains(&t.trigger) {
                continue;
            }
            let Some(post) = transfer(ir, conc, t, &src) else {
                continue;
            };
            let count = {
                let c = joins.entry(t.to).or_insert(0);
                *c += 1;
                *c
            };
            let tgt = at.entry(t.to).or_default();
            if join_env(conc, tgt, &post, count) && !work.contains(&t.to) {
                work.push(t.to);
            }
        }
    }

    let mut hull: BTreeMap<&'static str, AbsVal> = BTreeMap::new();
    for env in at.values() {
        for (var, val) in env {
            hull.entry(var)
                .and_modify(|h| *h = h.join(*val))
                .or_insert(*val);
        }
    }
    let unreachable = ir
        .states
        .iter()
        .copied()
        .filter(|s| !at.contains_key(s))
        .collect();
    Analysis {
        at: at.into_iter().collect(),
        hull,
        unreachable,
    }
}

/// The outcome of the static interchangeability proof for one machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymmetryVerdict {
    /// Responder sub-states are fully interchangeable: relabelling
    /// participants commutes with every transition.
    Certified,
    /// A named transition consults a concrete rank asymmetrically; the
    /// quotient construction must refuse this machine.
    Refused {
        /// The offending transition (the certificate's counterexample).
        transition: &'static str,
        /// Why the transition is rank-dependent.
        reason: &'static str,
    },
}

impl SymmetryVerdict {
    /// Whether the machine is certified interchangeable.
    pub fn is_certified(&self) -> bool {
        matches!(self, SymmetryVerdict::Certified)
    }
}

/// Statically certify (or refute) participant interchangeability.
///
/// The guard language cannot name a pid — [`Atom`] has no pid-valued
/// constructor — and sends only address the triggering message's
/// endpoint, so the single way rank asymmetry enters a machine is an
/// explicit [`PidScope::Rank`] declaration. The first such transition
/// is returned as the counterexample. Declarations are honest by
/// construction review *and* by the dynamic cross-check: CI compares
/// quotient verdicts against the unreduced checker on the smoke grid,
/// which would diverge if a `Uniform` declaration were false.
pub fn symmetry_certificate(ir: &MachineIr) -> SymmetryVerdict {
    for t in &ir.transitions {
        if let PidScope::Rank(reason) = t.pid_scope {
            return SymmetryVerdict::Refused {
                transition: t.name,
                reason,
            };
        }
    }
    SymmetryVerdict::Certified
}

/// Machine-wide ranges for the composed coordinator + responder system,
/// with the wire-epoch feedback loop closed.
#[derive(Clone, Debug)]
pub struct SystemRanges {
    /// Coordinator analysis under the final wire-epoch interval.
    pub coord: Analysis,
    /// Responder analysis under the final wire-epoch interval.
    pub resp: Analysis,
    /// Epoch tags that can appear on any in-flight message.
    pub wire_epoch: Interval,
}

/// Close the mutual epoch dependency between the two roles.
///
/// Responder incarnations tag every message they send; the coordinator
/// bar rises to (or past) those tags; coordinator-originated beats are
/// epoch-0 plain beats and leave-acks echo the leaver's tag — so the
/// wire-epoch interval is the hull of `[0, 0]` and the responder's
/// incarnation range, and the loop converges in a couple of rounds
/// (monotone, bounded by the 8-bit span, widened inside [`analyze`]).
pub fn system_ranges(
    coord_spec: &CoordSpec,
    resp_spec: &RespSpec,
    active: &[Trigger],
) -> SystemRanges {
    let coord_ir = coord_spec.describe();
    let resp_ir = resp_spec.describe();
    let mut wire = Interval::point(0);
    for _ in 0..16 {
        let rc = Concretization::responder(resp_spec).with_wire_epochs(wire, wire);
        let ra = analyze(&resp_ir, &rc, active);
        let resp_epoch = ra.range("epoch").unwrap_or(Interval::point(0));
        let new_wire = Interval::point(0).hull(resp_epoch);
        if new_wire == wire {
            let cc = Concretization::coordinator(coord_spec).with_wire_epochs(wire, resp_epoch);
            let ca = analyze(&coord_ir, &cc, active);
            return SystemRanges {
                coord: ca,
                resp: ra,
                wire_epoch: wire,
            };
        }
        wire = new_wire;
    }
    unreachable!("wire-epoch fixpoint failed to converge on the 8-bit lattice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixes::FixLevel;
    use crate::params::Params;
    use crate::variant::Variant;

    fn coord(variant: Variant, fix: FixLevel, n: usize) -> CoordSpec {
        CoordSpec::new(variant, Params::new(4, 10).unwrap(), n, fix)
    }

    fn resp(variant: Variant, fix: FixLevel) -> RespSpec {
        RespSpec::new(variant, Params::new(4, 10).unwrap(), fix)
    }

    #[test]
    fn coordinator_round_length_stays_between_tmin_and_tmax() {
        let spec = coord(Variant::Static, FixLevel::Full, 2);
        let a = analyze(
            &spec.describe(),
            &Concretization::coordinator(&spec),
            &CHECKER_TRIGGERS,
        );
        assert_eq!(a.range("t"), Some(Interval::new(4, 10)));
        assert_eq!(a.range("tm"), Some(Interval::new(4, 10)));
        assert_eq!(a.range("elapsed"), Some(Interval::new(0, 10)));
    }

    #[test]
    fn epochs_are_pinned_without_the_internal_trigger() {
        let spec = resp(Variant::Dynamic, FixLevel::Full);
        let a = analyze(
            &spec.describe(),
            &Concretization::responder(&spec),
            &CHECKER_TRIGGERS,
        );
        assert_eq!(a.range("epoch"), Some(Interval::point(0)));
        // With the restart path active the incarnation is unbounded and
        // widening takes it to the full 8-bit span.
        let all = [
            Trigger::Time,
            Trigger::Receive,
            Trigger::Fault,
            Trigger::Internal,
        ];
        let wide = analyze(&spec.describe(), &Concretization::responder(&spec), &all);
        assert_eq!(wide.range("epoch"), Some(Interval::new(0, 255)));
    }

    #[test]
    fn rejoin_bar_rises_at_most_one_past_the_pinned_incarnations() {
        let c = coord(Variant::Dynamic, FixLevel::Full, 2);
        let r = resp(Variant::Dynamic, FixLevel::Full);
        let sys = system_ranges(&c, &r, &CHECKER_TRIGGERS);
        assert_eq!(sys.wire_epoch, Interval::point(0));
        assert_eq!(sys.coord.range("min_epoch"), Some(Interval::new(0, 1)));
    }

    #[test]
    fn fault_free_analysis_proves_crash_states_unreachable() {
        let spec = resp(Variant::Binary, FixLevel::Original);
        let a = analyze(
            &spec.describe(),
            &Concretization::responder(&spec),
            &[Trigger::Time, Trigger::Receive],
        );
        assert!(a.unreachable.contains(&"crashed"));
        assert!(!a.unreachable.contains(&"nv-inactive"));
    }

    #[test]
    fn parity_tracks_singletons_and_gives_up_on_timers() {
        let spec = resp(Variant::Binary, FixLevel::Original);
        let a = analyze(
            &spec.describe(),
            &Concretization::responder(&spec),
            &CHECKER_TRIGGERS,
        );
        assert_eq!(a.hull["joined"].parity, Parity::Odd);
        assert_eq!(a.hull["waiting"].parity, Parity::Either);
    }

    #[test]
    fn widths_follow_from_proven_ranges() {
        assert_eq!(Interval::point(7).bits(), 0);
        assert_eq!(Interval::new(0, 1).bits(), 1);
        assert_eq!(Interval::new(4, 10).bits(), 3);
        assert_eq!(Interval::new(0, 255).bits(), 8);
    }

    #[test]
    fn plain_machines_are_certified_interchangeable() {
        for v in Variant::ALL {
            for fix in FixLevel::ALL {
                let n = if v.is_two_process() { 1 } else { 2 };
                let c = coord(v, fix, n);
                let r = resp(v, fix);
                assert!(symmetry_certificate(&c.describe()).is_certified());
                assert!(symmetry_certificate(&r.describe()).is_certified());
            }
        }
    }
}
