//! The coordinator process `p[0]`, for every protocol variant.
//!
//! `p[0]` runs in rounds. Each round it waits `t` time units, then (on its
//! *timeout*) recomputes the per-participant waiting times from the
//! heartbeats received during the round, either inactivates itself
//! (acceleration bottomed out below `tmin`) or broadcasts a fresh heartbeat
//! to every joined participant and starts the next round.
//!
//! The specification is split into an immutable [`CoordSpec`] (variant,
//! timing, participant count) and a small hashable [`CoordState`] so the
//! same transition functions drive both the discrete-event simulator and
//! the model-checking models.

use crate::fixes::FixLevel;
use crate::msg::{Heartbeat, Pid, Status};
use crate::params::Params;
use crate::serial::{serial_bump, serial_gt, serial_lt, serial_max};
use crate::variant::Variant;

/// Immutable description of a coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordSpec {
    variant: Variant,
    params: Params,
    n: usize,
    fix: FixLevel,
}

/// Mutable state of a coordinator (hashable; used directly inside model
/// states).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoordState {
    /// Liveness status.
    pub status: Status,
    /// Current round length.
    pub t: u32,
    /// Time elapsed in the current round (kept `<= t` by urgency).
    pub elapsed: u32,
    /// Per-participant: heartbeat received during the current round?
    pub rcvd: Vec<bool>,
    /// Per-participant waiting times (the paper's `tm` list).
    pub tm: Vec<u32>,
    /// Per-participant: joined the protocol? (All-true for non-join
    /// variants.)
    pub jnd: Vec<bool>,
    /// Per-participant: has permanently left (dynamic protocol only;
    /// unused when the §7 epoch rejoin is active — the epoch bar below
    /// replaces the latch).
    pub left: Vec<bool>,
    /// Per-participant §7 epoch bar: the registered incarnation. Beats
    /// tagged with a smaller epoch are stale leftovers of a superseded
    /// incarnation; an epoch-rejoin coordinator ignores them, the base
    /// protocols merely count them (see `stale_admitted`). Always
    /// maintained, so a run can report what naive rejoin would have let
    /// through.
    pub min_epoch: Vec<u8>,
    /// Stale beats processed as if fresh (naive rejoin only).
    pub stale_admitted: u32,
    /// Stale beats rejected by the epoch filter (§7 rejoin only).
    pub stale_filtered: u32,
}

/// What a coordinator round timeout produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeoutOutcome {
    /// The acceleration bottomed out: `p[0]` inactivated itself
    /// non-voluntarily.
    Inactivated,
    /// `p[0]` broadcast a heartbeat and started the next round. The
    /// broadcast goes to every joined participant — iterate them with
    /// [`CoordSpec::recipients`] (may be empty in the expanding/dynamic
    /// variants before anyone joins). Carrying no list keeps the round
    /// path allocation-free.
    Beat,
}

/// Reaction of the coordinator to an incoming heartbeat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordReaction {
    /// Nothing to send.
    None,
    /// Dynamic protocol: acknowledge a leave by sending this
    /// `Heartbeat::leave()`-style ack (tagged with the leaver's epoch) to
    /// this participant immediately.
    LeaveAck(Pid, Heartbeat),
}

impl CoordSpec {
    /// Describe a coordinator for `variant` with `n` participants.
    ///
    /// For [`Variant::Binary`], [`Variant::RevisedBinary`] and
    /// [`Variant::TwoPhase`] the paper fixes `n = 1`; this is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `n != 1` for a two-process variant.
    pub fn new(variant: Variant, params: Params, n: usize, fix: FixLevel) -> Self {
        assert!(n > 0, "a heartbeat protocol needs at least one participant");
        if matches!(
            variant,
            Variant::Binary | Variant::RevisedBinary | Variant::TwoPhase
        ) {
            assert_eq!(n, 1, "{variant} is a two-process protocol");
        }
        Self {
            variant,
            params,
            n,
            fix,
        }
    }

    /// The protocol variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The timing parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Number of (potential) participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The fix level. The coordinator's own transition logic is
    /// fix-independent (both §6 corrections live in message/timeout
    /// *scheduling* and in the participants' bounds); the level is carried
    /// here as the single source of truth for composition layers.
    pub fn fix(&self) -> FixLevel {
        self.fix
    }

    /// The initial coordinator state.
    ///
    /// `rcvd` starts all-true, as in the paper's mCRL2 model: the first
    /// round is always a full `tmax` round. The revised binary protocol
    /// starts with its timeout already due, so the first beat goes out at
    /// time zero.
    pub fn init_state(&self) -> CoordState {
        let joined = !self.variant.has_join_phase();
        CoordState {
            status: Status::Active,
            t: self.params.tmax(),
            elapsed: if self.variant.initial_send_immediate() {
                self.params.tmax()
            } else {
                0
            },
            rcvd: vec![true; self.n],
            tm: vec![self.params.tmax(); self.n],
            jnd: vec![joined; self.n],
            left: vec![false; self.n],
            min_epoch: vec![0; self.n],
            stale_admitted: 0,
            stale_filtered: 0,
        }
    }

    /// Whether this coordinator runs the §7 epoch-tagged rejoin (it rides
    /// on the full §6 fix; see [`FixLevel::epoch_rejoin`]).
    pub fn epoch_rejoin(&self) -> bool {
        self.fix.epoch_rejoin()
    }

    /// Whether the round timeout must fire now (urgent).
    pub fn timeout_due(&self, s: &CoordState) -> bool {
        s.status.is_active() && s.elapsed >= s.t
    }

    /// Whether time may pass for this process (no urgent event pending).
    pub fn may_tick(&self, s: &CoordState) -> bool {
        !self.timeout_due(s)
    }

    /// Advance one time unit. Clocks freeze once inactive.
    ///
    /// # Panics
    ///
    /// Debug-panics if called while the timeout is due (urgency violation).
    pub fn tick(&self, s: &mut CoordState) {
        debug_assert!(self.may_tick(s), "tick while coordinator timeout is due");
        if s.status.is_active() {
            s.elapsed += 1;
        }
    }

    /// Voluntarily inactivate (crash). Idempotent once inactive.
    pub fn crash(&self, s: &mut CoordState) {
        if s.status.is_active() {
            s.status = Status::Crashed;
        }
    }

    /// The per-participant waiting-time step for a silent round.
    fn silent_step(&self, tm_i: u32) -> u32 {
        let halved = Params::halve(tm_i);
        if self.variant.two_phase_step() && halved >= self.params.tmin() {
            // Two-phase acceleration: jump straight to tmin (the
            // inactivation condition below still keys off the halved
            // value, keeping verdicts aligned with the binary protocol).
            self.params.tmin()
        } else {
            halved
        }
    }

    /// Handle the round timeout: recompute waiting times, then either
    /// inactivate or broadcast and start the next round.
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`timeout_due`](Self::timeout_due).
    pub fn on_timeout(&self, s: &mut CoordState) -> TimeoutOutcome {
        debug_assert!(self.timeout_due(s));
        // First pass (read-only): the inactivation-deciding minimum, which
        // for the two-phase variant is the *halved* value even though the
        // stored time jumps to tmin. Deciding before writing keeps the
        // inactivating timeout from mutating `tm` — exactly what the old
        // clone-then-discard achieved, without the per-round allocation.
        let mut decide_min = u32::MAX;
        for i in 0..self.n {
            if !s.jnd[i] {
                continue;
            }
            decide_min = decide_min.min(if s.rcvd[i] {
                self.params.tmax()
            } else {
                Params::halve(s.tm[i])
            });
        }
        if decide_min < self.params.tmin() {
            s.status = Status::NvInactive;
            return TimeoutOutcome::Inactivated;
        }
        // Second pass: commit the new waiting times in place and derive
        // the round length — the minimum waiting time over joined
        // participants, tmax while nobody has joined (every stored time is
        // at most tmax, so the tmax seed is exact, not a clamp).
        let mut round = self.params.tmax();
        for i in 0..self.n {
            if !s.jnd[i] {
                continue;
            }
            s.tm[i] = if s.rcvd[i] {
                self.params.tmax()
            } else {
                self.silent_step(s.tm[i])
            };
            round = round.min(s.tm[i]);
            s.rcvd[i] = false;
        }
        s.t = round;
        s.elapsed = 0;
        TimeoutOutcome::Beat
    }

    /// The pids a [`TimeoutOutcome::Beat`] broadcast goes to: the joined
    /// participants, in ascending pid order. `on_timeout` never changes
    /// the joined set, so this is valid (and stable) right after it.
    pub fn recipients<'a>(&self, s: &'a CoordState) -> impl Iterator<Item = Pid> + 'a {
        s.jnd
            .iter()
            .enumerate()
            .filter(|&(_, &joined)| joined)
            .map(|(i, _)| i + 1)
    }

    /// Handle a heartbeat from participant `from` (1-based pid).
    ///
    /// Crashed/inactive coordinators consume messages without reacting
    /// (the paper: messages to crashed processes are delivered but get no
    /// reply). A `flag = false` beat in the dynamic protocol removes the
    /// sender from the joined set and is acknowledged immediately.
    ///
    /// Without the §7 rejoin (any fix level below `Full`) a participant
    /// that left can never rejoin: its slot latches shut, and beats from
    /// superseded incarnations are *admitted* as if fresh (counted in
    /// `stale_admitted` — the naive-rejoin hazard). With
    /// [`epoch_rejoin`](Self::epoch_rejoin) the coordinator instead keeps
    /// a per-participant epoch bar, mirroring
    /// [`RejoinCoordSpec`](crate::rejoin::RejoinCoordSpec): stale beats
    /// are dropped, a leave of epoch `e` raises the bar to `e + 1`, and a
    /// later incarnation registers by beating with a higher epoch.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn on_heartbeat(&self, s: &mut CoordState, from: Pid, hb: Heartbeat) -> CoordReaction {
        assert!((1..=self.n).contains(&from), "pid {from} out of range");
        let i = from - 1;
        if !s.status.is_active() {
            return CoordReaction::None;
        }
        let rejoin = self.epoch_rejoin();
        if s.left[i] && !rejoin {
            return CoordReaction::None;
        }
        if serial_lt(hb.epoch, s.min_epoch[i]) {
            if rejoin {
                s.stale_filtered = s.stale_filtered.saturating_add(1);
                return CoordReaction::None;
            }
            s.stale_admitted = s.stale_admitted.saturating_add(1);
        }
        if self.variant.supports_leave() && !hb.flag {
            s.jnd[i] = false;
            s.rcvd[i] = false;
            if rejoin {
                s.min_epoch[i] = serial_max(s.min_epoch[i], serial_bump(hb.epoch));
            } else {
                s.left[i] = true;
            }
            return CoordReaction::LeaveAck(from, Heartbeat::leave().with_epoch(hb.epoch));
        }
        s.rcvd[i] = true;
        if self.variant.has_join_phase() {
            s.jnd[i] = true;
        }
        if serial_gt(hb.epoch, s.min_epoch[i]) {
            s.min_epoch[i] = hb.epoch;
        }
        CoordReaction::None
    }

    /// The broadcast heartbeat for `pid`: echoes the participant's
    /// registered incarnation, so an epoch-aware responder can tell its
    /// own rounds from leftovers addressed to a superseded incarnation.
    /// For the base protocols every epoch is 0 and this is
    /// `Heartbeat::plain()`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn beat_for(&self, s: &CoordState, pid: Pid) -> Heartbeat {
        assert!((1..=self.n).contains(&pid), "pid {pid} out of range");
        Heartbeat::plain().with_epoch(s.min_epoch[pid - 1])
    }

    /// Time until the next round timeout, if the coordinator is active.
    pub fn next_timeout_in(&self, s: &CoordState) -> Option<u32> {
        s.status.is_active().then(|| s.t.saturating_sub(s.elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(variant: Variant, tmin: u32, tmax: u32, n: usize) -> CoordSpec {
        CoordSpec::new(
            variant,
            Params::new(tmin, tmax).unwrap(),
            n,
            FixLevel::Original,
        )
    }

    fn run_to_timeout(spec: &CoordSpec, s: &mut CoordState) -> TimeoutOutcome {
        while !spec.timeout_due(s) {
            spec.tick(s);
        }
        spec.on_timeout(s)
    }

    #[test]
    fn binary_first_round_is_tmax_and_broadcasts() {
        let sp = spec(Variant::Binary, 1, 10, 1);
        let mut s = sp.init_state();
        assert_eq!(sp.next_timeout_in(&s), Some(10));
        let out = run_to_timeout(&sp, &mut s);
        assert_eq!(out, TimeoutOutcome::Beat);
        assert_eq!(sp.recipients(&s).collect::<Vec<_>>(), vec![1]);
        // first round had rcvd=true, so t stays tmax
        assert_eq!(s.t, 10);
        assert!(!s.rcvd[0]);
    }

    #[test]
    fn revised_binary_fires_immediately() {
        let sp = spec(Variant::RevisedBinary, 1, 10, 1);
        let s = sp.init_state();
        assert!(sp.timeout_due(&s));
        assert_eq!(sp.next_timeout_in(&s), Some(0));
    }

    #[test]
    fn halving_chain_until_inactivation() {
        let sp = spec(Variant::Binary, 1, 10, 1);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s); // t = 10 (rcvd was initially true)
        let mut lengths = vec![];
        while let TimeoutOutcome::Beat = run_to_timeout(&sp, &mut s) {
            lengths.push(s.t);
        }
        assert_eq!(lengths, vec![5, 2, 1]);
        assert_eq!(s.status, Status::NvInactive);
    }

    #[test]
    fn heartbeat_restores_tmax() {
        let sp = spec(Variant::Binary, 1, 10, 1);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s);
        run_to_timeout(&sp, &mut s); // silent: t = 5
        assert_eq!(s.t, 5);
        assert_eq!(
            sp.on_heartbeat(&mut s, 1, Heartbeat::plain()),
            CoordReaction::None
        );
        run_to_timeout(&sp, &mut s);
        assert_eq!(s.t, 10);
    }

    #[test]
    fn two_phase_jumps_to_tmin() {
        let sp = spec(Variant::TwoPhase, 4, 10, 1);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s); // t = 10
        run_to_timeout(&sp, &mut s); // silent: halved 5 >= 4 -> jump to tmin
        assert_eq!(s.t, 4);
        // next silent round: halve(4)=2 < 4 -> inactivate
        assert_eq!(run_to_timeout(&sp, &mut s), TimeoutOutcome::Inactivated);
    }

    #[test]
    fn two_phase_inactivation_matches_binary_condition() {
        // tmin=9: halve(10)=5 < 9 => inactivate on the first silent round,
        // exactly like binary (this is the interpretation that keeps
        // Table 1 verdicts identical across the variants).
        let sp = spec(Variant::TwoPhase, 9, 10, 1);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s);
        assert_eq!(run_to_timeout(&sp, &mut s), TimeoutOutcome::Inactivated);
    }

    #[test]
    fn static_round_uses_min_tm() {
        let sp = spec(Variant::Static, 1, 10, 3);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s);
        // Only participant 2 responds.
        sp.on_heartbeat(&mut s, 2, Heartbeat::plain());
        run_to_timeout(&sp, &mut s);
        assert_eq!(s.tm, vec![5, 10, 5]);
        assert_eq!(s.t, 5);
    }

    #[test]
    fn static_inactivates_when_any_participant_bottoms_out() {
        let sp = spec(Variant::Static, 4, 10, 2);
        let mut s = sp.init_state();
        run_to_timeout(&sp, &mut s); // all tmax
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain());
        run_to_timeout(&sp, &mut s); // tm = [10, 5]
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain());
        // participant 2 still silent: halve(5)=2 < 4 -> inactivate
        assert_eq!(run_to_timeout(&sp, &mut s), TimeoutOutcome::Inactivated);
    }

    #[test]
    fn expanding_broadcasts_only_to_joined() {
        let sp = spec(Variant::Expanding, 1, 10, 2);
        let mut s = sp.init_state();
        match run_to_timeout(&sp, &mut s) {
            TimeoutOutcome::Beat => assert_eq!(sp.recipients(&s).count(), 0),
            _ => panic!("no one joined; p0 must not inactivate"),
        }
        sp.on_heartbeat(&mut s, 2, Heartbeat::plain());
        assert!(s.jnd[1]);
        match run_to_timeout(&sp, &mut s) {
            TimeoutOutcome::Beat => assert_eq!(sp.recipients(&s).collect::<Vec<_>>(), vec![2]),
            _ => panic!(),
        }
    }

    #[test]
    fn expanding_never_inactivates_without_participants() {
        let sp = spec(Variant::Expanding, 5, 10, 1);
        let mut s = sp.init_state();
        for _ in 0..20 {
            assert!(matches!(run_to_timeout(&sp, &mut s), TimeoutOutcome::Beat));
            assert_eq!(s.t, 10);
        }
    }

    #[test]
    fn dynamic_leave_is_acknowledged_and_permanent() {
        let sp = spec(Variant::Dynamic, 1, 10, 1);
        let mut s = sp.init_state();
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain());
        assert!(s.jnd[0]);
        assert_eq!(
            sp.on_heartbeat(&mut s, 1, Heartbeat::leave()),
            CoordReaction::LeaveAck(1, Heartbeat::leave())
        );
        assert!(!s.jnd[0]);
        assert!(s.left[0]);
        // A stale join/stay beat must not re-join a left participant.
        assert_eq!(
            sp.on_heartbeat(&mut s, 1, Heartbeat::plain()),
            CoordReaction::None
        );
        assert!(!s.jnd[0]);
    }

    #[test]
    fn dynamic_leave_does_not_disturb_others() {
        let sp = spec(Variant::Dynamic, 1, 10, 2);
        let mut s = sp.init_state();
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain());
        sp.on_heartbeat(&mut s, 2, Heartbeat::plain());
        run_to_timeout(&sp, &mut s);
        sp.on_heartbeat(&mut s, 1, Heartbeat::leave());
        sp.on_heartbeat(&mut s, 2, Heartbeat::plain());
        for _ in 0..10 {
            match run_to_timeout(&sp, &mut s) {
                TimeoutOutcome::Beat => assert_eq!(sp.recipients(&s).collect::<Vec<_>>(), vec![2]),
                _ => panic!("p0 must stay active"),
            }
            sp.on_heartbeat(&mut s, 2, Heartbeat::plain());
        }
    }

    #[test]
    fn crashed_coordinator_ignores_everything() {
        let sp = spec(Variant::Binary, 1, 10, 1);
        let mut s = sp.init_state();
        sp.crash(&mut s);
        assert_eq!(s.status, Status::Crashed);
        s.rcvd[0] = false;
        assert_eq!(
            sp.on_heartbeat(&mut s, 1, Heartbeat::plain()),
            CoordReaction::None
        );
        assert!(!s.rcvd[0], "crashed coordinator must not record receipts");
        assert!(!sp.timeout_due(&s));
        assert_eq!(sp.next_timeout_in(&s), None);
        // ticking is allowed and a no-op
        sp.tick(&mut s);
        assert_eq!(s.elapsed, 0);
    }

    #[test]
    #[should_panic(expected = "two-process protocol")]
    fn binary_rejects_multiple_participants() {
        spec(Variant::Binary, 1, 10, 2);
    }

    fn rejoin_spec(variant: Variant, n: usize) -> CoordSpec {
        CoordSpec::new(variant, Params::new(1, 10).unwrap(), n, FixLevel::Full)
    }

    #[test]
    fn epoch_rejoin_rides_on_the_full_fix_only() {
        for fix in [
            FixLevel::Original,
            FixLevel::ReceivePriority,
            FixLevel::CorrectedBounds,
        ] {
            let sp = CoordSpec::new(Variant::Binary, Params::new(1, 10).unwrap(), 1, fix);
            assert!(!sp.epoch_rejoin(), "{fix}");
        }
        assert!(rejoin_spec(Variant::Binary, 1).epoch_rejoin());
    }

    #[test]
    fn stale_beats_are_filtered_under_rejoin_and_admitted_without() {
        // Register epoch 2, then replay an epoch-1 leftover.
        let sp = rejoin_spec(Variant::Binary, 1);
        let mut s = sp.init_state();
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(2));
        assert_eq!(s.min_epoch, vec![2]);
        s.rcvd[0] = false;
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(1));
        assert!(!s.rcvd[0], "stale beat must not count as liveness");
        assert_eq!((s.stale_filtered, s.stale_admitted), (1, 0));

        // Naive rejoin (no epoch filter): the same leftover is admitted.
        let sp = spec(Variant::Binary, 1, 10, 1);
        let mut s = sp.init_state();
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(2));
        s.rcvd[0] = false;
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(1));
        assert!(s.rcvd[0], "naive coordinator counts the stale beat");
        assert_eq!((s.stale_filtered, s.stale_admitted), (0, 1));
    }

    #[test]
    fn epoch_bar_wraps_past_255_incarnations() {
        // Incarnations advance one step per revive, so a long-lived
        // deployment walks the registered bar all the way to 255. The
        // *next* revive wraps to epoch 0, which must still register as
        // fresh (RFC 1982 serial order), not get filtered as stale.
        let sp = rejoin_spec(Variant::Binary, 1);
        let mut s = sp.init_state();
        s.min_epoch[0] = 255;
        s.rcvd[0] = false;
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(0));
        assert!(s.rcvd[0], "wrapped incarnation must re-register");
        assert_eq!(s.min_epoch, vec![0], "bar follows the wrap");
        assert_eq!((s.stale_filtered, s.stale_admitted), (0, 0));
        // A leftover beat of the superseded incarnation 255 is now stale.
        s.rcvd[0] = false;
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(255));
        assert!(!s.rcvd[0]);
        assert_eq!(s.stale_filtered, 1);
    }

    #[test]
    fn rejoin_leave_raises_the_bar_instead_of_latching() {
        let sp = rejoin_spec(Variant::Dynamic, 1);
        let mut s = sp.init_state();
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(1));
        assert!(s.jnd[0]);
        assert_eq!(
            sp.on_heartbeat(&mut s, 1, Heartbeat::leave().with_epoch(1)),
            CoordReaction::LeaveAck(1, Heartbeat::leave().with_epoch(1))
        );
        assert!(!s.jnd[0]);
        assert!(!s.left[0], "no permanent latch under rejoin");
        assert_eq!(s.min_epoch, vec![2]);
        // The old incarnation can no longer re-enrol...
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(1));
        assert!(!s.jnd[0]);
        // ...but a fresh one can.
        sp.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(2));
        assert!(s.jnd[0]);
        assert_eq!(s.min_epoch, vec![2]);
    }

    #[test]
    fn beat_for_echoes_the_registered_epoch() {
        let sp = rejoin_spec(Variant::Expanding, 2);
        let mut s = sp.init_state();
        assert_eq!(sp.beat_for(&s, 1), Heartbeat::plain());
        sp.on_heartbeat(&mut s, 2, Heartbeat::plain().with_epoch(3));
        assert_eq!(sp.beat_for(&s, 2), Heartbeat::plain().with_epoch(3));
        assert_eq!(sp.beat_for(&s, 1), Heartbeat::plain());
    }

    #[test]
    fn beats_within_round_keep_protocol_alive_forever() {
        let sp = spec(Variant::Binary, 5, 10, 1);
        let mut s = sp.init_state();
        for _ in 0..100 {
            match run_to_timeout(&sp, &mut s) {
                TimeoutOutcome::Beat => {}
                TimeoutOutcome::Inactivated => panic!("must not inactivate"),
            }
            sp.on_heartbeat(&mut s, 1, Heartbeat::plain());
        }
        assert_eq!(s.status, Status::Active);
    }
}
