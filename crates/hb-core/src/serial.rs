//! RFC 1982 serial-number arithmetic over the `u8` epoch space.
//!
//! §7 rejoin tags every heartbeat with the sender's incarnation epoch.
//! Epochs live in a single byte on the wire, so a node that crashes and
//! revives often enough wraps past 255. Plain integer comparison breaks
//! at the wrap: incarnation 0 (the 256th) would look *older* than the
//! registered incarnation 255 and every later beat would be filtered as
//! stale, permanently un-registering the node. DNS SOA serials have the
//! same problem, and RFC 1982 gives the standard answer: compare on the
//! circle, where `a < b` iff `b` is within a half-space (128 values)
//! *ahead* of `a`.
//!
//! Two values exactly half the space apart (distance 128) are
//! *incomparable* under RFC 1982 — neither is less than the other. The
//! helpers here resolve every such tie conservatively in favour of the
//! **first** argument, which callers pass as the currently registered
//! value: an incomparable tag never moves the epoch bar. In practice
//! consecutive incarnations differ by 1, so ties only arise if ~128
//! incarnations are skipped wholesale.

/// Half of the 8-bit serial space (`2^(SERIAL_BITS - 1)` of RFC 1982).
const HALF: u8 = 128;

/// RFC 1982 `a < b` on 8-bit serials: `b` is strictly ahead of `a`.
///
/// Wrap-aware: `serial_lt(255, 0)` is `true` (0 is the next incarnation
/// after 255), while `serial_lt(0, 255)` is `false`.
#[must_use]
pub fn serial_lt(a: u8, b: u8) -> bool {
    (a < b && b - a < HALF) || (a > b && a - b > HALF)
}

/// RFC 1982 `a > b` on 8-bit serials: `a` is strictly ahead of `b`.
#[must_use]
pub fn serial_gt(a: u8, b: u8) -> bool {
    serial_lt(b, a)
}

/// `a >= b` on the serial circle: equal, or `a` strictly ahead.
#[must_use]
pub fn serial_ge(a: u8, b: u8) -> bool {
    a == b || serial_gt(a, b)
}

/// The later of two serials; keeps `a` on an RFC 1982 incomparable tie.
///
/// Callers pass the registered value first, so a tie never moves an
/// epoch bar.
#[must_use]
pub fn serial_max(a: u8, b: u8) -> u8 {
    if serial_gt(b, a) {
        b
    } else {
        a
    }
}

/// The next incarnation after `e`, wrapping past 255 back to 0.
#[must_use]
pub fn serial_bump(e: u8) -> u8 {
    e.wrapping_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_plain_order_far_from_the_wrap() {
        for a in 0u8..=100 {
            for b in 0u8..=100 {
                assert_eq!(serial_lt(a, b), a < b, "lt({a},{b})");
                assert_eq!(serial_gt(a, b), a > b, "gt({a},{b})");
                assert_eq!(serial_ge(a, b), a >= b, "ge({a},{b})");
                assert_eq!(serial_max(a, b), a.max(b), "max({a},{b})");
            }
        }
    }

    #[test]
    fn wraps_past_the_top_of_the_space() {
        // The 256th incarnation (epoch 0 again) is *newer* than 255.
        assert!(serial_lt(255, 0));
        assert!(serial_gt(0, 255));
        assert!(serial_ge(0, 255));
        assert!(!serial_lt(0, 255));
        assert_eq!(serial_max(255, 0), 0);
        assert_eq!(serial_max(0, 255), 0);
        // A short window ahead of the wrap still orders correctly.
        assert!(serial_lt(250, 3));
        assert!(serial_gt(3, 250));
    }

    #[test]
    fn bump_wraps_and_always_moves_forward() {
        assert_eq!(serial_bump(0), 1);
        assert_eq!(serial_bump(254), 255);
        assert_eq!(serial_bump(255), 0);
        for e in 0u8..=255 {
            assert!(serial_gt(serial_bump(e), e), "bump({e}) not ahead");
        }
    }

    #[test]
    fn incomparable_ties_keep_the_first_argument() {
        // Distance exactly 128: neither is ahead (RFC 1982 leaves the
        // order undefined); `serial_max` must not move the bar.
        assert!(!serial_lt(0, 128));
        assert!(!serial_lt(128, 0));
        assert!(!serial_gt(0, 128));
        assert!(!serial_ge(0, 128));
        assert_eq!(serial_max(0, 128), 0);
        assert_eq!(serial_max(128, 0), 128);
    }

    #[test]
    fn strict_order_is_antisymmetric_and_irreflexive() {
        for a in [0u8, 1, 5, 127, 128, 129, 200, 254, 255] {
            assert!(!serial_lt(a, a));
            for b in [0u8, 1, 5, 127, 128, 129, 200, 254, 255] {
                assert!(
                    !(serial_lt(a, b) && serial_lt(b, a)),
                    "lt not antisymmetric at ({a},{b})"
                );
            }
        }
    }
}
