//! The six protocol variants and their structural properties.

use std::fmt;

/// Which accelerated heartbeat protocol is being run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Two processes `p[0]`, `p[1]`; `p[0]` waits a full initial round
    /// before its first beat (Gouda & McGuire '98 §2.1).
    Binary,
    /// Binary, but `p[0]` sends its first heartbeat immediately at start
    /// (McGuire & Gouda, *The Austin Protocol Compiler*, 2004).
    RevisedBinary,
    /// Binary, but a silent round drops the waiting time straight to
    /// `tmin` instead of halving ('98 §2.1).
    ///
    /// The original paper does not specify the coordinator's inactivation
    /// condition for this variant; following Atif & Mousavi (who report
    /// verdicts identical to the binary protocol) we keep the binary
    /// condition — inactivate when `t/2 < tmin` — and jump to `tmin`
    /// otherwise.
    TwoPhase,
    /// A fixed, a-priori-known set of `n` participants, each running the
    /// binary exchange with `p[0]`; `p[0]`'s round length is the minimum
    /// of the per-participant waiting times ('98 §2.2).
    Static,
    /// Participants may join at runtime by sending heartbeats every `tmin`
    /// until `p[0]`'s beat confirms the join ('98 §2.3).
    Expanding,
    /// Participants may join and permanently leave; heartbeats carry a
    /// boolean join/leave flag ('98 §2.4).
    Dynamic,
}

impl Variant {
    /// All variants, in presentation order.
    pub const ALL: [Variant; 6] = [
        Variant::Binary,
        Variant::RevisedBinary,
        Variant::TwoPhase,
        Variant::Static,
        Variant::Expanding,
        Variant::Dynamic,
    ];

    /// The variants covered by the paper's Table 1 (identical verdicts).
    pub const TABLE1: [Variant; 4] = [
        Variant::Binary,
        Variant::RevisedBinary,
        Variant::TwoPhase,
        Variant::Static,
    ];

    /// The variants covered by the paper's Table 2.
    pub const TABLE2: [Variant; 2] = [Variant::Expanding, Variant::Dynamic];

    /// Whether the coordinator's first beat goes out immediately at start
    /// rather than after an initial `tmax` wait.
    pub fn initial_send_immediate(self) -> bool {
        matches!(self, Variant::RevisedBinary)
    }

    /// Whether participants start outside the protocol and must join by
    /// sending heartbeats (expanding and dynamic).
    pub fn has_join_phase(self) -> bool {
        matches!(self, Variant::Expanding | Variant::Dynamic)
    }

    /// Whether participants may leave (dynamic only).
    pub fn supports_leave(self) -> bool {
        matches!(self, Variant::Dynamic)
    }

    /// Whether a silent round jumps straight to `tmin` (two-phase) rather
    /// than halving.
    pub fn two_phase_step(self) -> bool {
        matches!(self, Variant::TwoPhase)
    }

    /// Whether the variant is one of the two-process shapes, pinned to a
    /// single participant (`CoordSpec::new` asserts `n == 1` for these).
    pub fn is_two_process(self) -> bool {
        matches!(
            self,
            Variant::Binary | Variant::RevisedBinary | Variant::TwoPhase
        )
    }

    /// A short lowercase name (used in reports and bench output).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Binary => "binary",
            Variant::RevisedBinary => "revised-binary",
            Variant::TwoPhase => "two-phase",
            Variant::Static => "static",
            Variant::Expanding => "expanding",
            Variant::Dynamic => "dynamic",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_properties() {
        assert!(Variant::RevisedBinary.initial_send_immediate());
        assert!(!Variant::Binary.initial_send_immediate());
        assert!(Variant::Expanding.has_join_phase());
        assert!(Variant::Dynamic.has_join_phase());
        assert!(!Variant::Static.has_join_phase());
        assert!(Variant::Dynamic.supports_leave());
        assert!(!Variant::Expanding.supports_leave());
        assert!(Variant::TwoPhase.two_phase_step());
        assert!(!Variant::Binary.two_phase_step());
    }

    #[test]
    fn table_partitions_cover_all() {
        let mut all: Vec<Variant> = Variant::TABLE1.to_vec();
        all.extend(Variant::TABLE2);
        assert_eq!(all.len(), Variant::ALL.len());
        for v in Variant::ALL {
            assert!(all.contains(&v));
        }
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), Variant::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Variant::TwoPhase.to_string(), "two-phase");
    }
}
