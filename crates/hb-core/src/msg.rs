//! Message and process-status primitives shared by all protocol variants.

use std::fmt;

/// Process identifier. `0` is always the coordinator `p[0]`; participants
/// are `1..=n`.
pub type Pid = usize;

/// A heartbeat message.
///
/// All variants except the dynamic protocol send plain heartbeats
/// (`flag = true`). The dynamic protocol overloads the flag: `true` means
/// *join / remain in the protocol*, `false` means *leave* (from a
/// participant) or *leave acknowledged* (from the coordinator).
///
/// The §7 rejoin extension additionally tags every message with the
/// sender's incarnation `epoch`: a participant bumps its epoch on every
/// (re)join, and an epoch-aware coordinator uses the tag to tell a fresh
/// incarnation's beats from stale ones still in flight from a crashed
/// predecessor. The base 1998/2004 protocols ignore the field and always
/// send epoch `0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Heartbeat {
    /// Dynamic-protocol payload; `true` for every other variant.
    pub flag: bool,
    /// Sender incarnation (§7 rejoin); `0` for the base protocols.
    pub epoch: u8,
}

impl Heartbeat {
    /// A plain heartbeat (also the dynamic join/stay beat), epoch 0.
    pub const fn plain() -> Self {
        Heartbeat {
            flag: true,
            epoch: 0,
        }
    }

    /// A dynamic-protocol leave beat / leave acknowledgement, epoch 0.
    pub const fn leave() -> Self {
        Heartbeat {
            flag: false,
            epoch: 0,
        }
    }

    /// The same message re-tagged with `epoch`.
    #[must_use]
    pub const fn with_epoch(self, epoch: u8) -> Self {
        Heartbeat {
            flag: self.flag,
            epoch,
        }
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::plain()
    }
}

impl fmt::Display for Heartbeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.flag {
            write!(f, "hb")?;
        } else {
            write!(f, "hb(leave)")?;
        }
        if self.epoch > 0 {
            write!(f, "@e{}", self.epoch)?;
        }
        Ok(())
    }
}

/// The liveness status of a process.
///
/// The paper distinguishes *voluntary* inactivation (a crash: a process
/// "chooses to become inactive") from *non-voluntary* inactivation (the
/// protocol shutting a process down after missing heartbeats). Neither is
/// recoverable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Running the protocol.
    Active,
    /// Voluntarily inactive (crashed). Crashed processes still *receive*
    /// messages (per the paper's channel assumptions) but never react.
    Crashed,
    /// Non-voluntarily inactivated by the protocol itself.
    NvInactive,
}

impl Status {
    /// Whether the process is still running the protocol.
    pub fn is_active(self) -> bool {
        matches!(self, Status::Active)
    }

    /// Whether the process is inactive for any reason.
    pub fn is_inactive(self) -> bool {
        !self.is_active()
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Active => "active",
            Status::Crashed => "crashed",
            Status::NvInactive => "nv-inactive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_constructors() {
        assert!(Heartbeat::plain().flag);
        assert!(!Heartbeat::leave().flag);
        assert_eq!(Heartbeat::plain().epoch, 0);
        assert_eq!(Heartbeat::leave().epoch, 0);
        assert_eq!(Heartbeat::default(), Heartbeat::plain());
    }

    #[test]
    fn with_epoch_retags_without_touching_the_flag() {
        let hb = Heartbeat::plain().with_epoch(3);
        assert!(hb.flag);
        assert_eq!(hb.epoch, 3);
        let lv = Heartbeat::leave().with_epoch(255);
        assert!(!lv.flag);
        assert_eq!(lv.epoch, 255);
    }

    #[test]
    fn heartbeat_display() {
        assert_eq!(Heartbeat::plain().to_string(), "hb");
        assert_eq!(Heartbeat::leave().to_string(), "hb(leave)");
        assert_eq!(Heartbeat::plain().with_epoch(2).to_string(), "hb@e2");
        assert_eq!(Heartbeat::leave().with_epoch(1).to_string(), "hb(leave)@e1");
    }

    #[test]
    fn status_predicates() {
        assert!(Status::Active.is_active());
        assert!(Status::Crashed.is_inactive());
        assert!(Status::NvInactive.is_inactive());
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Active.to_string(), "active");
        assert_eq!(Status::Crashed.to_string(), "crashed");
        assert_eq!(Status::NvInactive.to_string(), "nv-inactive");
    }
}
