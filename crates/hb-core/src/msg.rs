//! Message and process-status primitives shared by all protocol variants.

use std::fmt;

/// Process identifier. `0` is always the coordinator `p[0]`; participants
/// are `1..=n`.
pub type Pid = usize;

/// A heartbeat message.
///
/// All variants except the dynamic protocol send plain heartbeats
/// (`flag = true`). The dynamic protocol overloads the flag: `true` means
/// *join / remain in the protocol*, `false` means *leave* (from a
/// participant) or *leave acknowledged* (from the coordinator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Heartbeat {
    /// Dynamic-protocol payload; `true` for every other variant.
    pub flag: bool,
}

impl Heartbeat {
    /// A plain heartbeat (also the dynamic join/stay beat).
    pub const fn plain() -> Self {
        Heartbeat { flag: true }
    }

    /// A dynamic-protocol leave beat / leave acknowledgement.
    pub const fn leave() -> Self {
        Heartbeat { flag: false }
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::plain()
    }
}

impl fmt::Display for Heartbeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.flag {
            write!(f, "hb")
        } else {
            write!(f, "hb(leave)")
        }
    }
}

/// The liveness status of a process.
///
/// The paper distinguishes *voluntary* inactivation (a crash: a process
/// "chooses to become inactive") from *non-voluntary* inactivation (the
/// protocol shutting a process down after missing heartbeats). Neither is
/// recoverable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Running the protocol.
    Active,
    /// Voluntarily inactive (crashed). Crashed processes still *receive*
    /// messages (per the paper's channel assumptions) but never react.
    Crashed,
    /// Non-voluntarily inactivated by the protocol itself.
    NvInactive,
}

impl Status {
    /// Whether the process is still running the protocol.
    pub fn is_active(self) -> bool {
        matches!(self, Status::Active)
    }

    /// Whether the process is inactive for any reason.
    pub fn is_inactive(self) -> bool {
        !self.is_active()
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Active => "active",
            Status::Crashed => "crashed",
            Status::NvInactive => "nv-inactive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_constructors() {
        assert!(Heartbeat::plain().flag);
        assert!(!Heartbeat::leave().flag);
        assert_eq!(Heartbeat::default(), Heartbeat::plain());
    }

    #[test]
    fn heartbeat_display() {
        assert_eq!(Heartbeat::plain().to_string(), "hb");
        assert_eq!(Heartbeat::leave().to_string(), "hb(leave)");
    }

    #[test]
    fn status_predicates() {
        assert!(Status::Active.is_active());
        assert!(Status::Crashed.is_inactive());
        assert!(Status::NvInactive.is_inactive());
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Active.to_string(), "active");
        assert_eq!(Status::Crashed.to_string(), "crashed");
        assert_eq!(Status::NvInactive.to_string(), "nv-inactive");
    }
}
