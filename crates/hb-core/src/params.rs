//! Timing parameters of the protocols and the derived detection bounds.

use std::error::Error;
use std::fmt;

use crate::variant::Variant;

/// The two timing constants every accelerated heartbeat protocol is
/// parameterized by.
///
/// * `tmax` — the steady-state waiting time between coordinator rounds.
/// * `tmin` — both the lower bound on round length (a round shorter than
///   `tmin` inactivates the coordinator) *and* the upper bound on the
///   round-trip channel delay between `p[0]` and any `p[i]`.
///
/// The only constraint stated in the paper is `0 < tmin ≤ tmax`.
///
/// # Example
///
/// ```
/// use hb_core::Params;
/// let p = Params::new(1, 10)?;
/// assert_eq!(p.tmin(), 1);
/// assert_eq!(p.tmax(), 10);
/// assert!(Params::new(0, 10).is_err());
/// assert!(Params::new(11, 10).is_err());
/// # Ok::<(), hb_core::params::ParamsError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Params {
    tmin: u32,
    tmax: u32,
}

/// Error constructing [`Params`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamsError {
    /// `tmin` must be strictly positive.
    ZeroTmin,
    /// `tmin` must not exceed `tmax`.
    TminAboveTmax {
        /// The offending `tmin`.
        tmin: u32,
        /// The offending `tmax`.
        tmax: u32,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::ZeroTmin => write!(f, "tmin must be strictly positive"),
            ParamsError::TminAboveTmax { tmin, tmax } => {
                write!(f, "tmin ({tmin}) must not exceed tmax ({tmax})")
            }
        }
    }
}

impl Error for ParamsError {}

impl Params {
    /// Validate and construct timing parameters.
    ///
    /// `tmin == tmax` is legal — the paper requires only
    /// `0 < tmin ≤ tmax`. The degenerate point (no acceleration: the
    /// halving chain is a single round) is exactly where the original
    /// protocols violate R2/R3 (Fig 12), so generators and regression
    /// seeds deliberately include it; see
    /// `tests/cross_validation.proptest-regressions` and the promoted
    /// `regression_tmin_eq_tmax_*` tests.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] unless `0 < tmin <= tmax`.
    pub fn new(tmin: u32, tmax: u32) -> Result<Self, ParamsError> {
        if tmin == 0 {
            return Err(ParamsError::ZeroTmin);
        }
        if tmin > tmax {
            return Err(ParamsError::TminAboveTmax { tmin, tmax });
        }
        Ok(Self { tmin, tmax })
    }

    /// Lower bound on round length / upper bound on round-trip delay.
    pub fn tmin(&self) -> u32 {
        self.tmin
    }

    /// Steady-state round length.
    pub fn tmax(&self) -> u32 {
        self.tmax
    }

    /// The acceleration step: integer halving, as in the paper's
    /// `t div 2`.
    pub fn halve(t: u32) -> u32 {
        t / 2
    }

    /// Number of *consecutive* silent rounds after which the coordinator
    /// inactivates, starting from a `tmax` round: the length of the chain
    /// `tmax, tmax/2, …` truncated at the first value `< tmin`
    /// (`⌊log₂(tmax/tmin)⌋ + 1` up to integer-division effects).
    ///
    /// This is also the number of consecutive *lost* heartbeats needed for
    /// a false inactivation, i.e. the protocol's reliability exponent.
    pub fn silent_rounds_to_inactivation(&self) -> u32 {
        let mut t = self.tmax;
        let mut rounds = 0;
        loop {
            rounds += 1;
            t = Self::halve(t);
            if t < self.tmin {
                return rounds;
            }
        }
    }

    /// Total time spent in the halving chain `tmax + tmax/2 + …` down to
    /// (excluding) the first value `< tmin`.
    pub fn halving_chain_duration(&self) -> u32 {
        let mut t = self.tmax;
        let mut total = 0;
        loop {
            total += t;
            t = Self::halve(t);
            if t < self.tmin {
                return total;
            }
        }
    }

    /// The detection bound for the coordinator **claimed** by the original
    /// paper: `p[0]` becomes inactive within `2·tmax` of the last heartbeat
    /// it receives. Model checking (requirement R1) shows this claim false
    /// whenever `2·tmin ≤ tmax`.
    pub fn p0_bound_claimed(&self) -> u32 {
        2 * self.tmax
    }

    /// The **corrected** coordinator detection bound of Atif & Mousavi
    /// §6.2, per variant:
    ///
    /// * halving variants: `2·tmax` if `2·tmin > tmax`, else
    ///   `3·tmax − tmin`;
    /// * two-phase: `2·tmax` if `2·tmin > tmax`, else `2·tmax + tmin`
    ///   (the silent chain is `tmax` then `tmin`).
    pub fn p0_bound_corrected(&self, variant: Variant) -> u32 {
        if 2 * self.tmin > self.tmax {
            return 2 * self.tmax;
        }
        match variant {
            Variant::TwoPhase => 2 * self.tmax + self.tmin,
            _ => 3 * self.tmax - self.tmin,
        }
    }

    /// The participant (`p[i]`) inactivation timeout of the **original**
    /// protocols: `3·tmax − tmin` without heartbeats from `p[0]`.
    pub fn responder_bound_original(&self) -> u32 {
        3 * self.tmax - self.tmin
    }

    /// The **corrected** participant timeout of Atif & Mousavi §6.2:
    ///
    /// * binary / revised / two-phase / static: `2·tmax` — a *tighter*
    ///   (earlier-detecting) bound that is still never reached without a
    ///   fault;
    /// * expanding / dynamic: `2·tmax + tmin` — the original
    ///   `3·tmax − tmin` is *incorrect* (too small) whenever
    ///   `2·tmin ≥ tmax` because of the join phase.
    pub fn responder_bound_corrected(&self, variant: Variant) -> u32 {
        if variant.has_join_phase() {
            2 * self.tmax + self.tmin
        } else {
            2 * self.tmax
        }
    }

    /// `tmax/tmin` as a float — the acceleration ratio, i.e. the overhead
    /// advantage over a naive heartbeat with the same worst-case detection.
    pub fn acceleration_ratio(&self) -> f64 {
        f64::from(self.tmax) / f64::from(self.tmin)
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(tmin={}, tmax={})", self.tmin, self.tmax)
    }
}

/// The five data sets of the paper's verification campaign:
/// `tmin ∈ {1, 4, 5, 9, 10}`, `tmax = 10`.
pub const PAPER_DATASETS: [(u32, u32); 5] = [(1, 10), (4, 10), (5, 10), (9, 10), (10, 10)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Params::new(1, 1).is_ok());
        assert_eq!(Params::new(0, 5), Err(ParamsError::ZeroTmin));
        assert_eq!(
            Params::new(6, 5),
            Err(ParamsError::TminAboveTmax { tmin: 6, tmax: 5 })
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(
            Params::new(0, 5).unwrap_err().to_string(),
            "tmin must be strictly positive"
        );
        assert!(Params::new(6, 5)
            .unwrap_err()
            .to_string()
            .contains("must not exceed"));
    }

    #[test]
    fn halving_is_integer_division() {
        assert_eq!(Params::halve(10), 5);
        assert_eq!(Params::halve(5), 2);
        assert_eq!(Params::halve(1), 0);
    }

    #[test]
    fn silent_rounds_matches_log2() {
        // tmax=10, tmin=1: chain 10,5,2,1 -> halve(1)=0 < 1 => 4 rounds.
        assert_eq!(
            Params::new(1, 10).unwrap().silent_rounds_to_inactivation(),
            4
        );
        // tmax=10, tmin=4: chain 10,5 -> halve(5)=2 < 4 => 2 rounds.
        assert_eq!(
            Params::new(4, 10).unwrap().silent_rounds_to_inactivation(),
            2
        );
        // tmin=9: 10 -> 5 < 9 => 1 round.
        assert_eq!(
            Params::new(9, 10).unwrap().silent_rounds_to_inactivation(),
            1
        );
        // tmin=tmax: 1 round.
        assert_eq!(
            Params::new(10, 10).unwrap().silent_rounds_to_inactivation(),
            1
        );
    }

    #[test]
    fn halving_chain_duration_examples() {
        assert_eq!(Params::new(1, 10).unwrap().halving_chain_duration(), 18); // 10+5+2+1
        assert_eq!(Params::new(5, 10).unwrap().halving_chain_duration(), 15); // 10+5
        assert_eq!(Params::new(9, 10).unwrap().halving_chain_duration(), 10);
    }

    #[test]
    fn corrected_p0_bounds() {
        let p = Params::new(1, 10).unwrap();
        assert_eq!(p.p0_bound_corrected(Variant::Binary), 29); // 3*10-1
        assert_eq!(p.p0_bound_corrected(Variant::TwoPhase), 21); // 2*10+1
        let p = Params::new(9, 10).unwrap(); // 2tmin > tmax
        assert_eq!(p.p0_bound_corrected(Variant::Binary), 20);
        assert_eq!(p.p0_bound_corrected(Variant::TwoPhase), 20);
        // boundary 2tmin == tmax counts as the "slow" case
        let p = Params::new(5, 10).unwrap();
        assert_eq!(p.p0_bound_corrected(Variant::Binary), 25);
    }

    #[test]
    fn responder_bounds() {
        let p = Params::new(4, 10).unwrap();
        assert_eq!(p.responder_bound_original(), 26);
        assert_eq!(p.responder_bound_corrected(Variant::Binary), 20);
        assert_eq!(p.responder_bound_corrected(Variant::Expanding), 24);
        assert_eq!(p.responder_bound_corrected(Variant::Dynamic), 24);
    }

    #[test]
    fn acceleration_ratio() {
        let p = Params::new(2, 16).unwrap();
        assert!((p.acceleration_ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(Params::new(1, 10).unwrap().to_string(), "(tmin=1, tmax=10)");
    }

    #[test]
    fn paper_datasets_all_valid() {
        for (tmin, tmax) in PAPER_DATASETS {
            assert!(Params::new(tmin, tmax).is_ok());
        }
    }
}
