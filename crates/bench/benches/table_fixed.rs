//! Regenerate the §6 result of Atif & Mousavi (2009): the repaired
//! protocols — receive-priority (§6.1) **plus** corrected time bounds
//! (§6.2) — satisfy R1, R2 and R3 on every data set, for all six
//! variants.
//!
//! Also prints the *ablation*: each fix applied alone, showing that
//! neither is sufficient by itself (the paper: the priority fix "is
//! essential for solving the problems … but it is not sufficient").

use hb_core::{FixLevel, Variant};
use hb_verify::tables::{paper_params, sweep_variant};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = hb_verify::table_fixed();
    println!("{}", report.render());
    assert!(
        report.matches_expected(),
        "a fixed protocol violates a requirement — the repair is wrong"
    );

    println!("\n== ablation: one fix at a time ==\n");
    let datasets = paper_params();
    for variant in [Variant::Binary, Variant::Expanding] {
        for fix in [FixLevel::ReceivePriority, FixLevel::CorrectedBounds] {
            let sweep = sweep_variant(variant, fix, &datasets);
            println!("{}", sweep.render());
        }
    }
    println!(
        "reading the ablation: receive-priority alone repairs the binary\n\
         R2/R3 races but leaves R1 broken (the claimed 2*tmax bound is simply\n\
         wrong); corrected bounds alone leave the simultaneity races open.\n\
         Only the combination passes everything — as §6 of the paper states."
    );
    println!("wall time: {:.1?}", t0.elapsed());
}
