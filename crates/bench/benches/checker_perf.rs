//! Criterion micro-benchmarks of the verification substrate itself:
//! sequential vs parallel BFS throughput on the composed heartbeat
//! models, DFS, random walks, and the LTS reduction pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_core::{FixLevel, Params, Variant};
use hb_verify::requirements::{build_model, Requirement};
use hb_verify::solo::p0_reduced_lts;
use mck::dfs::Dfs;
use mck::parallel::ParallelChecker;
use mck::sim::random_walk;
use mck::Checker;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bfs_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_exhaustive");
    group.sample_size(10);
    for tmin in [4u32, 9] {
        let params = Params::new(tmin, 10).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R1,
        );
        group.bench_with_input(
            BenchmarkId::new("binary_r1", tmin),
            &model,
            |b, model| {
                b.iter(|| {
                    let out = Checker::new(model).check_invariant(|s| !model.monitor_error(s));
                    std::hint::black_box(out.stats().states)
                })
            },
        );
    }
    group.finish();
}

fn parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bfs");
    group.sample_size(10);
    let params = Params::new(9, 10).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R1,
    );
    group.bench_function("sequential", |b| {
        b.iter(|| {
            Checker::new(&model)
                .check_invariant(|s| !model.monitor_error(s))
                .stats()
                .states
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ParallelChecker::new(&model)
                        .threads(threads)
                        .check_invariant(|s| !model.monitor_error(s))
                        .stats()
                        .states
                })
            },
        );
    }
    group.finish();
}

fn dfs_and_walks(c: &mut Criterion) {
    let params = Params::new(4, 10).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    c.bench_function("dfs_exhaustive_r2", |b| {
        b.iter(|| {
            Dfs::new(&model)
                .find(|s| s.coord.status == hb_core::Status::NvInactive)
                .stats()
                .states
        })
    });
    c.bench_function("random_walk_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| random_walk(&model, &mut rng, 1_000).len())
    });
}

fn lts_reduction(c: &mut Criterion) {
    c.bench_function("p0_solo_reduction", |b| {
        let params = Params::new(1, 4).unwrap();
        b.iter(|| p0_reduced_lts(params).num_states)
    });
}

criterion_group!(
    benches,
    bfs_exhaustive,
    parallel_vs_sequential,
    dfs_and_walks,
    lts_reduction
);
criterion_main!(benches);
