//! Micro-benchmarks of the verification substrate itself: sequential vs
//! parallel BFS throughput on the composed heartbeat models, DFS, random
//! walks, and the LTS reduction pipeline.
//!
//! Plain timing harness (the offline toolchain has no criterion): each
//! workload is run a few times and the best wall time is reported.

use std::time::{Duration, Instant};

use hb_core::{FixLevel, Params, Variant};
use hb_verify::requirements::{build_model, Requirement};
use hb_verify::solo::p0_reduced_lts;
use mck::dfs::Dfs;
use mck::parallel::ParallelChecker;
use mck::sim::random_walk;
use mck::Checker;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 3;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        out = Some(std::hint::black_box(f()));
        best = best.min(t0.elapsed());
    }
    drop(out);
    println!("{name:<40} {best:>12.1?}  (best of {RUNS})");
}

fn main() {
    println!("== checker_perf ==");

    for tmin in [4u32, 9] {
        let params = Params::new(tmin, 10).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R1,
        );
        bench(&format!("bfs_exhaustive/binary_r1/tmin={tmin}"), || {
            Checker::new(&model)
                .check_invariant(|s| !model.monitor_error(s))
                .stats()
                .states
        });
    }

    let params = Params::new(9, 10).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R1,
    );
    bench("parallel_bfs/sequential", || {
        Checker::new(&model)
            .check_invariant(|s| !model.monitor_error(s))
            .stats()
            .states
    });
    for threads in [2usize, 4, 8] {
        bench(&format!("parallel_bfs/threads={threads}"), || {
            ParallelChecker::new(&model)
                .threads(threads)
                .check_invariant(|s| !model.monitor_error(s))
                .stats()
                .states
        });
    }

    let params = Params::new(4, 10).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    bench("dfs_exhaustive_r2", || {
        Dfs::new(&model)
            .find(|s| s.coord.status == hb_core::Status::NvInactive)
            .stats()
            .states
    });
    let mut rng = StdRng::seed_from_u64(1);
    bench("random_walk_1k", || {
        random_walk(&model, &mut rng, 1_000).len()
    });

    let params = Params::new(1, 4).unwrap();
    bench("p0_solo_reduction", || p0_reduced_lts(params).num_states);
}
