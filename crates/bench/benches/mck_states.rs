//! Checker-scaling bench: states/sec and peak frontier bytes across the
//! reduction stacks of the n ≥ 2 scale campaign.
//!
//! For each cell (variant × requirement × n) the four stacks run under
//! the same state/time budget: plain BFS, the certificate-gated
//! sort-key symmetry quotient, symmetry over ample-set POR, and the
//! composed stack on the bit-packed store with dataflow-proven field
//! widths. Exhausting the budget *is* the unreduced baseline's
//! measurement at n = 8 — the reduced stacks finish the same cells
//! outright.
//!
//! Writes `BENCH_mck.json` (path overridable as the first non-flag
//! argument). `--smoke` shrinks the grid to one cheap cell for CI: same
//! code paths, no perf meaning. Either way the run fails if any two
//! finished stacks disagree on a verdict.

use std::time::Duration;

use hb_core::{FixLevel, Params, Variant};
use hb_verify::requirements::Requirement;
use hb_verify::tables::{scale_cell, scale_disagreements, Reduction, ScaleCell, ScaleLimits};

fn states_per_sec(c: &ScaleCell) -> f64 {
    if c.millis == 0 {
        return c.states as f64 * 1000.0;
    }
    c.states as f64 * 1000.0 / c.millis as f64
}

fn cell_json(c: &ScaleCell) -> String {
    let peak = c
        .peak_bytes
        .map(|b| b.to_string())
        .unwrap_or_else(|| "null".into());
    format!(
        "{{\"variant\":\"{}\",\"req\":\"{}\",\"n\":{},\"reduction\":\"{}\",\
         \"verdict\":\"{}\",\"states\":{},\"transitions\":{},\"millis\":{},\
         \"states_per_s\":{:.0},\"peak_frontier_bytes\":{peak}}}",
        c.variant.name(),
        c.requirement.name(),
        c.n,
        c.reduction.name(),
        c.outcome.symbol(),
        c.states,
        c.transitions,
        c.millis,
        states_per_sec(c),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_mck.json".into());

    let p = Params::new(2, 6).expect("valid params");
    let limits = if smoke {
        ScaleLimits {
            max_states: 200_000,
            time_budget: Duration::from_secs(5),
        }
    } else {
        ScaleLimits {
            max_states: 4_000_000,
            time_budget: Duration::from_secs(60),
        }
    };
    // (variant, requirement, n): the §K grid corners. Static carries
    // the n-sweep to 8 (its full baseline already exhausts there);
    // expanding shows the join-phase blow-up at n = 4.
    let grid: Vec<(Variant, Requirement, usize)> = if smoke {
        vec![(Variant::Static, Requirement::R2, 2)]
    } else {
        vec![
            (Variant::Static, Requirement::R2, 2),
            (Variant::Static, Requirement::R2, 4),
            (Variant::Static, Requirement::R2, 8),
            (Variant::Expanding, Requirement::R2, 2),
            (Variant::Expanding, Requirement::R2, 4),
        ]
    };

    println!("== mck scale: states/s and peak frontier bytes (tmin=2 tmax=6, full fix) ==\n");
    println!(
        "{:<10} {:>3} {:<3} {:<15} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "variant", "req", "n", "reduction", "verdict", "states", "states/s", "peak-bytes", "ms"
    );
    println!("{}", "-".repeat(90));

    let mut cells = Vec::new();
    for &(variant, req, n) in &grid {
        for reduction in Reduction::ALL {
            let c = scale_cell(variant, p, FixLevel::Full, req, n, reduction, limits);
            println!(
                "{:<10} {:>3} {:<3} {:<15} {:>7} {:>10} {:>12.0} {:>12} {:>8}",
                c.variant.name(),
                c.requirement.name(),
                c.n,
                c.reduction.name(),
                c.outcome.symbol(),
                c.states,
                states_per_sec(&c),
                c.peak_bytes
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".into()),
                c.millis,
            );
            cells.push(c);
        }
    }

    let bad = scale_disagreements(&cells);
    assert!(
        bad.is_empty(),
        "reduction stacks disagree on a verdict: {bad:?}"
    );
    println!("\ncross-check: all finished stacks agree");

    let json = format!(
        "{{\"record\":\"bench_mck\",\"smoke\":{smoke},\
         \"tmin\":{},\"tmax\":{},\"fix\":\"full-fix\",\
         \"max_states\":{},\"budget_secs\":{},\
         \"cells\":[{}]}}",
        p.tmin(),
        p.tmax(),
        limits.max_states,
        limits.time_budget.as_secs(),
        cells.iter().map(cell_json).collect::<Vec<_>>().join(","),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_mck.json");
    println!("mck scale report -> {out_path}");
}
