//! GM98 evaluation, reconstructed — **reliability**: probability of a
//! false (loss-induced) inactivation as a function of the per-message
//! loss rate, accelerated heartbeat versus rate-matched naive baselines.
//!
//! Paper claim: a false inactivation of the accelerated protocol requires
//! `⌊log₂(tmax/tmin)⌋ + 1` *consecutive* silent rounds, so its
//! probability falls geometrically; a naive protocol at the same message
//! rate with tolerance 0/1 dies after 1/2 lost beats.

use hb_core::{Params, Variant};
use hb_sim::{run_scenario, NaiveConfig, NaiveWorld, Scenario};
use std::time::Instant;

const SEEDS: u64 = 200;
const HORIZON: u64 = 4_000;

fn accelerated_false_rate(params: Params, loss: f64) -> f64 {
    let mut failures = 0;
    for seed in 0..SEEDS {
        let sc = Scenario::lossy(Variant::Binary, params, loss, HORIZON);
        if run_scenario(&sc, seed).false_inactivations > 0 {
            failures += 1;
        }
    }
    failures as f64 / SEEDS as f64
}

fn naive_false_rate(cfg: NaiveConfig) -> f64 {
    let mut failures = 0;
    for seed in 0..SEEDS {
        let mut w = NaiveWorld::new(cfg, seed);
        w.run_until(HORIZON);
        if w.into_report().false_inactivations > 0 {
            failures += 1;
        }
    }
    failures as f64 / SEEDS as f64
}

fn main() {
    let t0 = Instant::now();
    let params = Params::new(1, 8).expect("valid");
    println!("false-inactivation probability within {HORIZON} units, {SEEDS} runs each, {params}");
    println!(
        "(accelerated tolerates {} consecutive losses; naive baselines are rate-matched at period = tmax)\n",
        params.silent_rounds_to_inactivation() - 1
    );
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12}",
        "loss", "accelerated", "naive tol=0", "naive tol=1"
    );
    println!("{}", "-".repeat(56));

    let naive = |tolerance, loss| NaiveConfig {
        period: params.tmax(),
        tolerance,
        delay_bound: params.tmin(),
        n: 1,
        loss_prob: loss,
    };

    let mut acc_curve = Vec::new();
    let mut naive0_curve = Vec::new();
    for loss in [0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50] {
        let acc = accelerated_false_rate(params, loss);
        let n0 = naive_false_rate(naive(0, loss));
        let n1 = naive_false_rate(naive(1, loss));
        acc_curve.push(acc);
        naive0_curve.push(n0);
        println!("{loss:>8.2} | {acc:>12.3} | {n0:>12.3} | {n1:>12.3}");
    }

    // Shape assertions: at every loss rate the accelerated protocol is at
    // least as reliable as the rate-matched tolerance-0 naive protocol,
    // and strictly dominates somewhere in the mid-range.
    assert!(
        acc_curve
            .iter()
            .zip(&naive0_curve)
            .all(|(a, n)| a <= &(n + 0.05)),
        "accelerated protocol less reliable than a tolerance-0 naive one"
    );
    assert!(
        acc_curve
            .iter()
            .zip(&naive0_curve)
            .any(|(a, n)| *n - *a > 0.3),
        "expected a large reliability gap somewhere in the sweep"
    );
    println!(
        "\nthe accelerated protocol holds out far longer: each extra halving\n\
         level is one more consecutive loss required for a false shutdown —\n\
         reliability at no extra steady-state cost (GM98's third claim)."
    );
    println!("wall time: {:.1?}", t0.elapsed());
}
