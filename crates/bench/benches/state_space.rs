//! State-space report: model sizes for every (variant, data set,
//! requirement) cell of the verification campaign, plus the liveness
//! check — the kind of table model-checking papers report alongside their
//! verdicts.

use hb_core::params::PAPER_DATASETS;
use hb_core::{FixLevel, Params, Variant};
use hb_verify::liveness::check_eventual_inactivation;
use hb_verify::requirements::{verify, Requirement};
use mck::liveness::LeadsToOutcome;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("== state-space sizes of the composed models (original protocols) ==\n");
    println!(
        "{:<16} {:>6} | {:>12} {:>12} {:>12}",
        "variant", "tmin", "R1 states", "R2 states", "R3 states"
    );
    println!("{}", "-".repeat(66));
    let mut grand_total = 0usize;
    for variant in Variant::ALL {
        for (tmin, tmax) in PAPER_DATASETS {
            let params = Params::new(tmin, tmax).unwrap();
            let mut cells = Vec::new();
            for req in Requirement::ALL {
                let v = verify(variant, params, FixLevel::Original, req);
                grand_total += v.stats.states;
                // Violated cells stop early; mark them.
                let mark = if v.holds { "" } else { "*" };
                cells.push(format!("{}{}", v.stats.states, mark));
            }
            println!(
                "{:<16} {:>6} | {:>12} {:>12} {:>12}",
                variant.name(),
                tmin,
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }
    println!("(*) violated cell: BFS stops at the first error, so the count is partial\n");
    println!("total states explored: {grand_total}");

    println!("\n== GM98 liveness: a network crash leads to full inactivation ==\n");
    println!("(checked as AG(crash -> AF all-inactive) with a lasso search; faults on)\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10}",
        "variant", "params", "verdict", "states"
    );
    println!("{}", "-".repeat(50));
    for variant in Variant::ALL {
        let params = Params::new(1, 4).unwrap();
        let out = check_eventual_inactivation(variant, params, FixLevel::Original, 1, 1 << 24);
        let (verdict, states) = match &out {
            LeadsToOutcome::Holds { states } => ("holds", *states),
            LeadsToOutcome::Violated { .. } => ("VIOLATED", 0),
            LeadsToOutcome::Unknown { states } => ("unknown", *states),
        };
        println!(
            "{:<16} {:>8} {:>10} {:>10}",
            variant.name(),
            "(1,4)",
            verdict,
            states
        );
        assert!(out.holds(), "{variant}: GM98's liveness core must hold");
    }
    println!(
        "\nthe *eventual* inactivation guarantee of GM98 holds for every variant\n\
         even in their original form — what the 2009 analysis refutes are the\n\
         *timed* refinements (the 2*tmax bound) and race-freedom, not the\n\
         liveness core."
    );
    println!("wall time: {:.1?}", t0.elapsed());
}
