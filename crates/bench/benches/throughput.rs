//! Hot-path throughput: simulator beats/sec bare and monitored, plus
//! campaign cells/sec — the trajectory the zero-alloc tick work is
//! measured against.
//!
//! Three sections, all on the deterministic sim backend:
//!
//! * **bare**: steady-state lossless worlds at n=1 (binary) and n=8
//!   (static), no tap — the raw tick path.
//! * **monitored**: the same worlds with an owned (lock-free)
//!   `MonitorSet` tap, verdicts asserted clean.
//! * **campaign**: a small fault-grid campaign, reported as cells/sec
//!   and runs/sec — the end-to-end cost of a grid point.
//!
//! Writes `BENCH_throughput.json` (path overridable as the first
//! non-flag argument). `--smoke` shrinks horizons and rounds to a CI
//! sanity run: same code paths, no perf meaning, no assertion beyond
//! the usual determinism and clean-verdict checks.

use std::time::Instant;

use bench::{mean, stddev};
use hb_chaos::campaign::{run_campaign, CampaignSpec};
use hb_chaos::Backend;
use hb_core::{FixLevel, Params, Variant};
use hb_monitor::MonitorSet;
use hb_sim::world::WorldConfig;
use hb_sim::World;

struct Config {
    name: &'static str,
    variant: Variant,
    n: usize,
}

struct Sample {
    /// beats delivered per wall second.
    throughput: f64,
    delivered: u64,
}

fn run_once(cfg: &Config, horizon: u64, monitored: bool) -> Sample {
    let world_cfg = WorldConfig {
        variant: cfg.variant,
        params: Params::new(2, 8).expect("valid"),
        fix: FixLevel::Full,
        n: cfg.n,
        loss_prob: 0.0,
        log_events: false,
    };
    let mut world = World::new(world_cfg, 1);
    if monitored {
        let m = MonitorSet::new(
            cfg.variant,
            Params::new(2, 8).expect("valid"),
            FixLevel::Full,
            cfg.n,
        );
        world.attach_owned_tap(Box::new(m));
    }
    let t0 = Instant::now();
    world.run_until(horizon);
    let secs = t0.elapsed().as_secs_f64();
    let taps = world.take_owned_taps();
    let report = world.into_report();
    if monitored {
        let tap = taps.into_iter().next().expect("the monitor comes back");
        let mut m = MonitorSet::from_tap(tap).expect("the tap is the monitor");
        m.finish(report.duration);
        let v = m.verdicts();
        assert!(
            v.clean(),
            "{}: steady state must be monitor-clean: {}",
            cfg.name,
            v.to_json()
        );
    }
    Sample {
        throughput: report.messages_delivered as f64 / secs,
        delivered: report.messages_delivered,
    }
}

/// A small grid the campaign section times: 2 cells × 2 seeds × 3 run
/// kinds on the sim backend, single-threaded so the number measures the
/// engine, not the thread pool.
fn campaign_spec(duration: u64, seeds: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        name: "throughput".into(),
        backend: Backend::Sim,
        variant: Variant::Binary,
        params: Params::new(2, 8).expect("valid"),
        n: 1,
        duration,
        fixes: vec![FixLevel::Full],
        loss: vec![0.0, 0.05],
        burst: vec![2.0],
        drift: vec![(1, 1)],
        partition: vec![0],
        seeds,
        threads: 1,
        monitor: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".into());

    let (horizon, rounds) = if smoke { (2_000, 1) } else { (100_000, 5) };
    let (camp_duration, camp_seeds): (u64, Vec<u64>) = if smoke {
        (200, vec![1])
    } else {
        (2_000, vec![1, 2])
    };

    let configs = [
        Config {
            name: "binary-n1",
            variant: Variant::Binary,
            n: 1,
        },
        Config {
            name: "static-n8",
            variant: Variant::Static,
            n: 8,
        },
    ];

    println!("== hot-path throughput ({horizon} ticks, {rounds} rounds, full fix) ==\n");
    println!(
        "{:>10} | {:>14} | {:>14} | {:>9}",
        "config", "bare beats/s", "monitored", "overhead"
    );
    println!("{}", "-".repeat(58));

    let mut rows = Vec::new();
    for cfg in &configs {
        let mut bare = Vec::new();
        let mut tapped = Vec::new();
        let mut delivered = 0;
        for _ in 0..rounds {
            let b = run_once(cfg, horizon, false);
            let t = run_once(cfg, horizon, true);
            delivered = b.delivered;
            assert_eq!(
                b.delivered, t.delivered,
                "{}: the tap must not change the protocol",
                cfg.name
            );
            bare.push(b.throughput);
            tapped.push(t.throughput);
        }
        let overhead = mean(&bare) / mean(&tapped) - 1.0;
        println!(
            "{:>10} | {:>14.0} | {:>14.0} | {:>8.1}%",
            cfg.name,
            mean(&bare),
            mean(&tapped),
            overhead * 100.0
        );
        rows.push(format!(
            "{{\"config\":\"{}\",\"n\":{},\"horizon\":{horizon},\"rounds\":{rounds},\
             \"beats_delivered\":{delivered},\
             \"bare_beats_per_s\":{:.0},\"bare_sd\":{:.0},\
             \"monitored_beats_per_s\":{:.0},\"monitored_sd\":{:.0},\
             \"overhead_pct\":{:.2}}}",
            cfg.name,
            cfg.n,
            mean(&bare),
            stddev(&bare),
            mean(&tapped),
            stddev(&tapped),
            overhead * 100.0,
        ));
    }

    let spec = campaign_spec(camp_duration, camp_seeds);
    let n_cells = spec.cells().len();
    let t0 = Instant::now();
    let report = run_campaign(&spec);
    let secs = t0.elapsed().as_secs_f64();
    let runs = report.total_runs();
    let cells_per_s = n_cells as f64 / secs;
    let runs_per_s = runs as f64 / secs;
    println!(
        "\n{:>10} | {:>6} cells, {:>4} runs | {:>8.2} cells/s | {:>8.1} runs/s",
        "campaign", n_cells, runs, cells_per_s, runs_per_s
    );

    let json = format!(
        "{{\"record\":\"bench_throughput\",\"smoke\":{smoke},\
         \"configs\":[{}],\
         \"campaign\":{{\"cells\":{n_cells},\"runs\":{runs},\"duration\":{camp_duration},\
         \"cells_per_s\":{cells_per_s:.2},\"runs_per_s\":{runs_per_s:.1}}}}}",
        rows.join(",")
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_throughput.json");
    println!("\nthroughput report -> {out_path}");
}
