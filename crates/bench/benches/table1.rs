//! Regenerate Atif & Mousavi (2009), **Table 1**: verification results for
//! the (revised) binary, two-phase and static heartbeat protocols on
//! `tmin ∈ {1, 4, 5, 9, 10}`, `tmax = 10`.
//!
//! Expected (paper): `R1: F F F T T`, `R2: T T T T F`, `R3: T T T T F`
//! identically for all four variants.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = hb_verify::table1();
    println!("{}", report.render());
    println!("wall time: {:.1?}", t0.elapsed());
    assert!(
        report.matches_expected(),
        "Table 1 diverged from the paper — see MISMATCH rows above"
    );
}
