//! Ablation — **burst loss and channel outages**: how the accelerated
//! protocol's "k consecutive losses" reliability defense behaves when
//! losses are *correlated* (a Gilbert–Elliott channel) rather than
//! independent, and how long a total channel outage it survives.
//!
//! This probes the boundary of GM98's reliability claim: the geometric
//! fall-off in the loss rate assumes independent losses; bursty channels
//! concentrate losses into exactly the consecutive runs the halving chain
//! is vulnerable to.

use hb_core::{Params, Variant};
use hb_sim::{run_scenario, LossModel, Scenario};
use std::time::Instant;

const SEEDS: u64 = 200;
const HORIZON: u64 = 4_000;

fn false_rate(params: Params, model: LossModel) -> f64 {
    let mut failures = 0;
    for seed in 0..SEEDS {
        let sc = Scenario::steady_state(Variant::Binary, params, HORIZON).with_loss_model(model);
        if run_scenario(&sc, seed).false_inactivations > 0 {
            failures += 1;
        }
    }
    failures as f64 / SEEDS as f64
}

fn main() {
    let t0 = Instant::now();
    let params = Params::new(1, 8).expect("valid"); // tolerates 3 consecutive losses

    println!("== burst loss vs independent loss (equal average rate) ==\n");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>14}",
        "avg loss", "bernoulli", "bursty (GE)", "burst factor"
    );
    println!("{}", "-".repeat(58));
    let mut burst_worse_somewhere = false;
    for avg in [0.01, 0.02, 0.05, 0.10] {
        // GE chain tuned to the same average: bad state drops everything,
        // mean bad-burst length 1/to_good = 5 messages.
        let to_good = 0.2;
        let to_bad = avg * to_good / (1.0 - avg);
        let ge = LossModel::GilbertElliott {
            to_bad,
            to_good,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        assert!((ge.average_loss() - avg).abs() < 1e-9);
        let b = false_rate(params, LossModel::Bernoulli(avg));
        let g = false_rate(params, ge);
        if g > b + 0.1 {
            burst_worse_somewhere = true;
        }
        println!(
            "{avg:>10.2} | {b:>12.3} | {g:>12.3} | {:>13.1}x",
            if b > 0.0 { g / b } else { f64::INFINITY }
        );
    }
    assert!(
        burst_worse_somewhere,
        "bursty loss should defeat the consecutive-loss defense somewhere"
    );
    println!(
        "\nsame average loss, very different outcomes: bursts align losses into\n\
         consecutive runs, eroding the halving chain's tolerance — the paper's\n\
         geometric reliability claim is an *independent-loss* result."
    );

    println!("\n== survival vs outage length ==\n");
    println!(
        "{:>8} | {:>10} | {:>14}",
        "outage", "survives", "halving chain"
    );
    println!("{}", "-".repeat(40));
    let chain = params.halving_chain_duration(); // 8+4+2+1 = 15
    for len in [2u64, 6, 10, 14, 16, 24, 48] {
        let mut survived = 0;
        for seed in 0..SEEDS {
            let sc = Scenario::steady_state(Variant::Binary, params, HORIZON)
                .with_outage(100, 100 + len);
            if run_scenario(&sc, seed).false_inactivations == 0 {
                survived += 1;
            }
        }
        println!(
            "{len:>8} | {:>9.2} | {:>14}",
            survived as f64 / SEEDS as f64,
            if u32::try_from(len).unwrap() <= chain {
                "within"
            } else {
                "beyond"
            }
        );
    }
    println!(
        "\nthe survival curve steps from ~1 to ~0 around the halving-chain\n\
         duration ({chain} units here): outages shorter than the chain are\n\
         absorbed, longer ones inactivate the network — which is precisely the\n\
         intended crash/outage-detection behaviour of GM98."
    );
    println!("wall time: {:.1?}", t0.elapsed());
}
