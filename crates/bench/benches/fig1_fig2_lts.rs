//! Regenerate Figures 1 and 2 of Atif & Mousavi (2009): the reduced
//! transition systems of the isolated processes `p[0]` and `p[1]` of the
//! binary protocol for `tmax = 2, tmin = 1` — raw exploration, hiding of
//! internal clock actions, weak-trace determinization and minimization,
//! exactly the pipeline the paper ran in CADP.
//!
//! The figures themselves are diagrams; what we reproduce and check is
//! their *structure*: the visible action alphabet, the handful-of-states
//! size after reduction, and the characteristic traces (steady beat
//! exchange, halving decay to non-voluntary inactivation, voluntary
//! inactivation anywhere).

use hb_core::Params;
use hb_verify::solo::{
    p0_figure_lts, p0_raw_lts, p0_reduced_lts, p1_figure_lts, p1_raw_lts, p1_reduced_lts,
};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let params = Params::new(1, 2).expect("figure parameters");

    for (name, raw, figure, reduced) in [
        (
            "Figure 1: p[0]",
            p0_raw_lts(params),
            p0_figure_lts(params),
            p0_reduced_lts(params),
        ),
        (
            "Figure 2: p[1]",
            p1_raw_lts(params),
            p1_figure_lts(params),
            p1_reduced_lts(params),
        ),
    ] {
        println!("{name} (tmax = 2, tmin = 1)");
        println!(
            "  raw LTS           : {:>4} states, {:>4} transitions",
            raw.num_states,
            raw.transitions.len()
        );
        println!(
            "  figure-faithful   : {:>4} states, {:>4} transitions (ticks visible, as in the diagram)",
            figure.num_states,
            figure.transitions.len()
        );
        println!(
            "  ticks hidden      : {:>4} states, {:>4} transitions (weak-trace)",
            reduced.num_states,
            reduced.transitions.len()
        );
        println!("  alphabet          : {:?}", figure.alphabet());
        println!("  DOT (figure-faithful):\n{}", figure.to_dot());
    }

    // Structural checks mirroring the diagrams.
    let p0 = p0_reduced_lts(params);
    assert!(p0.accepts_weak_trace(&["timeout at P0", "for p1(hb0)", "from p1(hb1)"]));
    assert!(p0.accepts_weak_trace(&[
        "timeout at P0",
        "for p1(hb0)",
        "timeout at P0",
        "for p1(hb0)",
        "timeout at P0",
        "inactivate nv p0"
    ]));
    let p1 = p1_reduced_lts(params);
    assert!(p1.accepts_weak_trace(&["from p0(hb0)", "for p0(hb1)"]));
    assert!(p1.accepts_weak_trace(&["timeout at P1", "inactivate nv p1"]));
    println!("structural trace checks passed");
    println!("wall time: {:.1?}", t0.elapsed());
}
