//! Monitor overhead: simulator throughput with and without an attached
//! streaming `MonitorSet` — the cost of judging R1–R3 online.
//!
//! Each configuration runs the same lossless steady-state world twice
//! per round, once bare and once with the monitor tapping every event,
//! and reports beats/sec plus the relative slowdown. The verdicts of
//! every monitored run must come back clean (steady state breaks no
//! requirement), so the bench doubles as a long-horizon soak test.
//!
//! Writes `BENCH_monitor.json` (path overridable as the first
//! non-flag argument) to start the monitor's speed trajectory.

use std::time::Instant;

use bench::{mean, stddev};
use hb_core::{FixLevel, Params, Variant};
use hb_monitor::MonitorSet;
use hb_sim::world::WorldConfig;
use hb_sim::World;

const HORIZON: u64 = 100_000;
const ROUNDS: usize = 5;

struct Config {
    name: &'static str,
    variant: Variant,
    n: usize,
}

struct Sample {
    /// beats delivered per wall second.
    throughput: f64,
    delivered: u64,
}

fn run_once(cfg: &Config, monitored: bool) -> Sample {
    let world_cfg = WorldConfig {
        variant: cfg.variant,
        params: Params::new(2, 8).expect("valid"),
        fix: FixLevel::Full,
        n: cfg.n,
        loss_prob: 0.0,
        log_events: false,
    };
    let mut world = World::new(world_cfg, 1);
    if monitored {
        // Owned tap: the sim is single-threaded, so the monitor rides
        // lock-free — this is the deployment configuration the bench
        // should price.
        let m = MonitorSet::new(
            cfg.variant,
            Params::new(2, 8).expect("valid"),
            FixLevel::Full,
            cfg.n,
        );
        world.attach_owned_tap(Box::new(m));
    }
    let t0 = Instant::now();
    world.run_until(HORIZON);
    let secs = t0.elapsed().as_secs_f64();
    let taps = world.take_owned_taps();
    let report = world.into_report();
    if monitored {
        let tap = taps.into_iter().next().expect("the monitor comes back");
        let mut m = MonitorSet::from_tap(tap).expect("the tap is the monitor");
        m.finish(report.duration);
        let v = m.verdicts();
        assert!(
            v.clean(),
            "{}: steady state must be monitor-clean: {}",
            cfg.name,
            v.to_json()
        );
    }
    Sample {
        throughput: report.messages_delivered as f64 / secs,
        delivered: report.messages_delivered,
    }
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_monitor.json".into());

    let configs = [
        Config {
            name: "binary-n1",
            variant: Variant::Binary,
            n: 1,
        },
        Config {
            name: "static-n8",
            variant: Variant::Static,
            n: 8,
        },
    ];

    println!(
        "== streaming monitor overhead (lossless steady state, {HORIZON} ticks, full fix) ==\n"
    );
    println!(
        "{:>10} | {:>14} | {:>14} | {:>9}",
        "config", "bare beats/s", "monitored", "overhead"
    );
    println!("{}", "-".repeat(58));

    let mut rows = Vec::new();
    for cfg in &configs {
        let mut bare = Vec::new();
        let mut tapped = Vec::new();
        let mut delivered = 0;
        for _ in 0..ROUNDS {
            let b = run_once(cfg, false);
            let t = run_once(cfg, true);
            delivered = b.delivered;
            assert_eq!(
                b.delivered, t.delivered,
                "{}: the tap must not change the protocol",
                cfg.name
            );
            bare.push(b.throughput);
            tapped.push(t.throughput);
        }
        let overhead = mean(&bare) / mean(&tapped) - 1.0;
        println!(
            "{:>10} | {:>14.0} | {:>14.0} | {:>8.1}%",
            cfg.name,
            mean(&bare),
            mean(&tapped),
            overhead * 100.0
        );
        rows.push(format!(
            "{{\"config\":\"{}\",\"n\":{},\"horizon\":{HORIZON},\"rounds\":{ROUNDS},\
             \"beats_delivered\":{delivered},\
             \"bare_beats_per_s\":{:.0},\"bare_sd\":{:.0},\
             \"monitored_beats_per_s\":{:.0},\"monitored_sd\":{:.0},\
             \"overhead_pct\":{:.2},\"verdicts_clean\":true}}",
            cfg.name,
            cfg.n,
            mean(&bare),
            stddev(&bare),
            mean(&tapped),
            stddev(&tapped),
            overhead * 100.0,
        ));
    }

    let json = format!(
        "{{\"record\":\"bench_monitor\",\"horizon\":{HORIZON},\"rounds\":{ROUNDS},\
         \"configs\":[{}]}}",
        rows.join(",")
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_monitor.json");
    println!("\nmonitor overhead report -> {out_path}");
}
