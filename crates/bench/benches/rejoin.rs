//! Future-work extension (both papers' §7/conclusions): the rejoinable
//! dynamic protocol, model-checked in two flavours.
//!
//! | flavour | participant safety | coordinator safety |
//! |---|---|---|
//! | naive rejoin | ? | **violated** (stale-join race) |
//! | epoch-tagged | holds | holds |
//!
//! Prints the verdict grid and the naive race as a trace.

use hb_core::Params;
use hb_verify::rejoin_model::{rejoin_results, RejoinModel};
use mck::{Checker, Model};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let params = Params::new(2, 4).expect("valid");
    println!("== rejoinable dynamic protocol (future work of GM98 / AM09) ==");
    println!("fault-free model, n = 1, up to 2 incarnations, {params}\n");

    let r = rejoin_results(params);
    println!(
        "{:<22} {:>22} {:>22}",
        "", "participant safety", "coordinator safety"
    );
    println!(
        "{:<22} {:>22} {:>22}",
        "naive rejoin",
        verdict(r.naive_participant_safe),
        verdict(r.naive_coordinator_safe)
    );
    println!(
        "{:<22} {:>22} {:>22}",
        "epoch-tagged rejoin",
        verdict(r.epoch_participant_safe),
        verdict(r.epoch_coordinator_safe)
    );

    // Show the naive race.
    let model = RejoinModel::new(params, 1, false, 2);
    let ce = Checker::new(&model)
        .find_state(RejoinModel::coordinator_nv)
        .expect("naive rejoin must be violated");
    println!(
        "\nshortest naive-rejoin counterexample ({} transitions):",
        ce.len()
    );
    for a in ce.actions() {
        let label = model.format_action(&a);
        if label != "tick" {
            println!("  {label}");
        }
    }
    println!(
        "\nreading the race: the participant joins, is confirmed, leaves — and a\n\
         straggler join beat from the dead incarnation, still in flight, re-enrols\n\
         it at the coordinator. Nobody answers the coordinator's beats any more,\n\
         the waiting time halves to nothing, and p[0] shuts down a perfectly\n\
         healthy network. Epoch filtering (each incarnation numbered; a leave of\n\
         epoch e raises the acceptance bar to e+1) removes every such race —\n\
         verified exhaustively above."
    );
    println!("\nwall time: {:.1?}", t0.elapsed());
    assert!(!r.naive_coordinator_safe);
    assert!(r.epoch_participant_safe && r.epoch_coordinator_safe);
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "holds"
    } else {
        "VIOLATED"
    }
}
