//! Regenerate Atif & Mousavi (2009), **Table 2**: verification results for
//! the expanding and dynamic heartbeat protocols on
//! `tmin ∈ {1, 4, 5, 9, 10}`, `tmax = 10`.
//!
//! Expected (paper): `R1: F F F T T`, `R2: T T F F F`, `R3: T T T T F`.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = hb_verify::table2();
    println!("{}", report.render());
    println!("wall time: {:.1?}", t0.elapsed());
    assert!(
        report.matches_expected(),
        "Table 2 diverged from the paper — see MISMATCH rows above"
    );
}
