//! GM98 evaluation, reconstructed — **detection delay**: distribution of
//! the time from an injected crash to full network inactivation, across
//! many seeds and crash phases, for every protocol variant, checked
//! against the analytic bounds (the original `3·tmax − tmin` claim and
//! the corrected §6.2 bounds).

use bench::{cell, max, quantile};
use hb_core::{FixLevel, Params, Pid, Variant};
use hb_sim::{run_scenario, Scenario};
use std::time::Instant;

const SEEDS: u64 = 300;

fn detection_samples(variant: Variant, params: Params, victim: Pid, fix: FixLevel) -> Vec<f64> {
    let mut out = Vec::new();
    for seed in 0..SEEDS {
        // vary the crash phase within a round via the seed
        let crash_at = 64 + (seed % u64::from(params.tmax()));
        let sc = Scenario::crash_at(variant, params, victim, crash_at).with_fix(fix);
        let report = run_scenario(&sc, seed);
        if let Some(d) = report.detection_delay {
            out.push(d as f64);
        }
    }
    out
}

fn main() {
    let t0 = Instant::now();
    let params = Params::new(2, 8).expect("valid");
    println!(
        "crash-to-full-shutdown delay, {} seeds x crash phases, {params}\n",
        SEEDS
    );
    println!(
        "{:<16} {:>8} {:>6} | {:>24} {:>8} {:>8} | {:>7}",
        "variant", "victim", "fix", "delay mean ± sd (max)", "p99", "bound", "within"
    );
    println!("{}", "-".repeat(92));

    let mut all_ok = true;
    for variant in Variant::ALL {
        for victim in [1usize, 0] {
            for fix in [FixLevel::Original, FixLevel::Full] {
                let samples = detection_samples(variant, params, victim, fix);
                assert!(
                    !samples.is_empty(),
                    "{variant}: crash of p[{victim}] never detected"
                );
                // Analytic bound on the *total* shutdown time: the survivor
                // side's own bound, plus (participant-victim case) the other
                // participants' cascade after p[0] goes down.
                let p0_bound = if fix.corrected_bounds() {
                    params.p0_bound_corrected(variant)
                } else {
                    // the *actual* worst case, which the original paper
                    // misstates as 2*tmax
                    params.p0_bound_corrected(variant)
                };
                let resp_bound = if fix.corrected_bounds() {
                    params.responder_bound_corrected(variant)
                } else {
                    params.responder_bound_original()
                };
                // A beat sent just before the crash may still be delivered
                // up to tmin later, resetting the survivor's watchdog —
                // hence the extra tmin in both chains. The participant-
                // victim case additionally cascades through p[0]'s own
                // detection before the remaining participants starve.
                let bound = if victim == 0 {
                    f64::from(params.tmin() + resp_bound)
                } else {
                    f64::from(p0_bound + params.tmin() + resp_bound)
                };
                let ok = max(&samples) <= bound;
                all_ok &= ok;
                println!(
                    "{:<16} {:>8} {:>6} | {:>24} {:>8.0} {:>8.0} | {:>7}",
                    variant.name(),
                    format!("p[{victim}]"),
                    if fix == FixLevel::Full {
                        "full"
                    } else {
                        "orig"
                    },
                    cell(&samples),
                    quantile(&samples, 0.99),
                    bound,
                    if ok { "yes" } else { "NO" },
                );
            }
        }
    }
    println!(
        "\nevery measured delay respects the analytic worst case; the corrected\n\
         (fixed) bounds also *tighten* detection for the binary/static family\n\
         (2*tmax instead of 3*tmax - tmin on the participant side, §6.2)."
    );
    println!("wall time: {:.1?}", t0.elapsed());
    assert!(
        all_ok,
        "a measured detection delay exceeded its analytic bound"
    );
}
