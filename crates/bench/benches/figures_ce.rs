//! Regenerate the counter-example figures of Atif & Mousavi (2009),
//! Figures 10(a), 10(b), 11, 12 and 13: replay each figure's exact
//! schedule against the composed model and independently search for a
//! shortest counterexample with BFS.

use hb_verify::figures::all_figures;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let figures = all_figures();
    for f in &figures {
        println!("{}", f.render());
        println!("{}", "=".repeat(64));
    }
    let ok = figures.iter().all(|f| f.reproduced());
    println!(
        "{} / {} figures reproduced (replay valid + error reached + BFS agrees)",
        figures.iter().filter(|f| f.reproduced()).count(),
        figures.len()
    );
    println!("wall time: {:.1?}", t0.elapsed());
    assert!(ok, "some counter-example figure failed to reproduce");
}
