//! GM98 evaluation, reconstructed — **overhead**: steady-state message
//! rate of the accelerated heartbeat versus the naive fixed-period
//! baseline, as the acceleration ratio `tmax/tmin` grows.
//!
//! Paper claim (reconstructed from the protocol definitions): the
//! accelerated protocol's steady-state rate is `~2/tmax`, *independent*
//! of how fast it can accelerate; a naive protocol that wants the same
//! detection bound and the same loss tolerance must beat at
//! `period = bound/(tolerance+1)`, i.e. several times faster.

use bench::{mean, stddev};
use hb_core::{Params, Variant};
use hb_sim::{run_scenario, NaiveConfig, NaiveWorld, Scenario};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let tmin = 2u32;
    let horizon = 50_000;
    println!("steady-state overhead vs acceleration ratio (tmin = {tmin}, horizon = {horizon})\n");
    println!(
        "{:>6} {:>7} | {:>10} {:>10} {:>9} | {:>12} {:>9} | {:>8}",
        "tmax", "ratio", "acc meas", "acc ~2/tmax", "detect", "naive match", "detect", "overhead*"
    );
    println!("{}", "-".repeat(88));
    for ratio in [1u32, 2, 4, 8, 16, 32] {
        let tmax = tmin * ratio;
        let params = Params::new(tmin, tmax).expect("valid");
        let rates: Vec<f64> = (0..8)
            .map(|seed| {
                run_scenario(
                    &Scenario::steady_state(Variant::Binary, params, horizon),
                    seed,
                )
                .message_rate()
            })
            .collect();
        let acc_detect = params.p0_bound_corrected(Variant::Binary);
        let tolerance = params.silent_rounds_to_inactivation() - 1;

        // Naive protocol matching the accelerated detection bound at equal
        // loss tolerance.
        let naive_cfg = NaiveConfig {
            period: (acc_detect / (tolerance + 1)).max(1),
            tolerance,
            delay_bound: tmin,
            n: 1,
            loss_prob: 0.0,
        };
        let naive_rates: Vec<f64> = (0..8)
            .map(|seed| {
                let mut w = NaiveWorld::new(naive_cfg, seed);
                w.run_until(horizon);
                w.into_report().message_rate()
            })
            .collect();

        println!(
            "{:>6} {:>6}x | {:>7.4}±{:>4.3} {:>10.4} {:>9} | {:>8.4}±{:>3.2} {:>9} | {:>7.1}x",
            tmax,
            ratio,
            mean(&rates),
            stddev(&rates),
            2.0 / f64::from(tmax),
            acc_detect,
            mean(&naive_rates),
            stddev(&naive_rates),
            naive_cfg.detection_bound(),
            mean(&naive_rates) / mean(&rates).max(1e-9),
        );
    }
    println!(
        "\n(*) overhead factor: messages the detection- and tolerance-matched naive\n\
         protocol sends per accelerated message. The accelerated rate tracks\n\
         2/tmax while its detection bound stays ~3*tmax - tmin — the GM98 thesis:\n\
         overhead falls linearly in tmax with only a linear (and loss-robust)\n\
         detection cost, while the naive protocol pays the product."
    );
    println!("wall time: {:.1?}", t0.elapsed());
}
