//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the reproduced papers has a dedicated bench
//! target (all `harness = false` so `cargo bench` regenerates the full
//! evaluation):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Atif & Mousavi Table 1 |
//! | `table2` | Atif & Mousavi Table 2 |
//! | `table_fixed` | §6 all-pass table + per-fix ablation |
//! | `figures_ce` | Figures 10(a)–13 counter-example replays |
//! | `fig1_fig2_lts` | Figures 1–2 reduced transition systems |
//! | `gm98_overhead` | overhead-vs-acceleration trade-off (GM98) |
//! | `gm98_detection` | detection-delay distributions vs analytic bounds |
//! | `gm98_reliability` | false-inactivation probability vs loss rate |
//! | `state_space` | model sizes per cell + the GM98 liveness core |
//! | `ablation_burst` | burst-loss and outage ablations (beyond the papers) |
//! | `rejoin` | future-work extension: naive vs epoch-tagged rejoin |
//! | `monitor_overhead` | streaming R1–R3 monitor tap cost (beyond the papers) |
//! | `checker_perf` | Criterion micro-benchmarks of the checker itself |

#![forbid(unsafe_code)]

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Maximum of a sample (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// `p`-quantile (nearest-rank) of a sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Render a compact `mean ± sd (max)` cell.
pub fn cell(xs: &[f64]) -> String {
    format!("{:.1} ± {:.1} (max {:.0})", mean(xs), stddev(xs), max(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138).abs() < 0.01);
    }

    #[test]
    fn empty_samples_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.99), 99.0);
    }

    #[test]
    fn cell_formats() {
        let s = cell(&[1.0, 2.0, 3.0]);
        assert!(s.contains('±'));
        assert!(s.contains("max 3"));
    }
}
